"""Tests for the Module/Parameter container machinery and serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Linear,
    Module,
    ModuleDict,
    ModuleList,
    Parameter,
    Tensor,
    inference_mode,
    is_grad_enabled,
    load_checkpoint,
    load_module,
    save_checkpoint,
    save_module,
)


class Nested(Module):
    def __init__(self, rng):
        super().__init__()
        self.encoder = MLP([4, 8, 4], rng=rng)
        self.heads = ModuleList([Linear(4, 2, rng=rng) for _ in range(3)])
        self.experts = ModuleDict({"a": Linear(4, 4, rng=rng)})
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.heads[0](self.encoder(x)) * self.scale


class TestTraversal:
    def test_named_parameters_have_stable_dotted_paths(self, rng):
        model = Nested(rng)
        names = [n for n, _ in model.named_parameters()]
        assert "scale" in names
        assert "encoder.net.0.weight" in names
        assert "heads.0.weight" in names
        assert "experts.a.bias" in names
        assert len(names) == len(set(names)), "duplicate parameter paths"

    def test_parameter_count(self, rng):
        model = Nested(rng)
        expected = (4 * 8 + 8) + (8 * 4 + 4) + 3 * (4 * 2 + 2) + (4 * 4 + 4) + 1
        assert model.num_parameters() == expected

    def test_module_list_iteration(self, rng):
        model = Nested(rng)
        assert len(model.heads) == 3
        assert all(isinstance(m, Linear) for m in model.heads)

    def test_module_dict_access(self, rng):
        model = Nested(rng)
        assert "a" in model.experts
        assert isinstance(model.experts["a"], Linear)
        assert list(model.experts.keys()) == ["a"]

    def test_named_modules_includes_nested(self, rng):
        model = Nested(rng)
        names = [n for n, _ in model.named_modules()]
        assert "encoder" in names
        assert "heads.0" in names


class TestTrainingState:
    def test_train_eval_propagates(self, rng):
        model = Nested(rng)
        model.eval()
        assert not model.training
        assert not model.encoder.training
        assert not model.heads[0].training
        model.train()
        assert model.heads[2].training

    def test_zero_grad_clears_all(self, rng):
        model = Nested(rng)
        out = model(Tensor(rng.normal(size=(2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip_restores_values(self, rng):
        model = Nested(rng)
        state = model.state_dict()
        other = Nested(np.random.default_rng(999))
        other.load_state_dict(state)
        x = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(model(x).data, other(x).data)

    def test_state_dict_values_are_copies(self, rng):
        model = Nested(rng)
        state = model.state_dict()
        state["scale"][...] = 123.0
        assert model.scale.data[0] == 1.0

    def test_strict_mismatch_raises(self, rng):
        model = Nested(rng)
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError, match="missing"):
            model.load_state_dict(state)

    def test_non_strict_allows_partial(self, rng):
        model = Nested(rng)
        state = {"scale": np.array([7.0])}
        model.load_state_dict(state, strict=False)
        assert model.scale.data[0] == 7.0

    def test_shape_mismatch_raises(self, rng):
        model = Nested(rng)
        state = model.state_dict()
        state["scale"] = np.zeros(5)
        with pytest.raises(ValueError, match="shape mismatch"):
            model.load_state_dict(state)


class TestSerialization:
    def test_npz_roundtrip(self, rng, tmp_path):
        model = Nested(rng)
        path = tmp_path / "ckpt"
        save_module(path, model)
        restored = Nested(np.random.default_rng(4321))
        load_module(path, restored)
        x = Tensor(rng.normal(size=(2, 4)))
        np.testing.assert_allclose(model(x).data, restored(x).data)

    def test_checkpoint_dict_roundtrip(self, tmp_path):
        state = {"a": np.arange(6.0).reshape(2, 3), "b": np.array([1.5])}
        save_checkpoint(tmp_path / "state.npz", state)
        loaded = load_checkpoint(tmp_path / "state.npz")
        assert set(loaded) == {"a", "b"}
        np.testing.assert_allclose(loaded["a"], state["a"])


class TestInferenceMode:
    def test_disables_grad_and_dropout(self, rng):
        model = MLP([4, 8, 4], dropout_p=0.5, rng=rng)
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        with inference_mode(model):
            assert not is_grad_enabled()
            assert not model.training
            out = model(x)
            assert not out.requires_grad
            # Dropout off: the forward is deterministic.
            np.testing.assert_array_equal(out.data, model(x).data)
        assert is_grad_enabled()

    def test_restores_per_module_training_flags(self, rng):
        model = Nested(rng)
        # Heterogeneous starting state: one submodule already in eval.
        model.heads[1].eval()
        assert model.training and not model.heads[1].training
        with inference_mode(model):
            assert not model.training
            assert not model.heads[1].training
        assert model.training
        assert not model.heads[1].training  # came back exactly as it was

    def test_multiple_roots(self, rng):
        a, b = MLP([2, 2], rng=rng), MLP([2, 2], rng=rng)
        b.eval()
        with inference_mode(a, b):
            assert not a.training and not b.training
        assert a.training and not b.training

    def test_forward_allocates_no_grad_buffers(self, rng):
        model = MLP([4, 8, 4], rng=rng)
        with inference_mode(model):
            out = model(Tensor(rng.normal(size=(3, 4))))
        assert all(p.grad is None for p in model.parameters())
        assert out._parents == ()
