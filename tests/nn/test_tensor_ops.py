"""Gradient and semantics tests for the core Tensor operations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, cat, grad_reverse, no_grad, stack, where

from tests.nn.gradcheck import assert_gradients_close


class TestArithmetic:
    def test_add_gradcheck(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(3, 4))
        assert_gradients_close(lambda x, y: (x + y).sum(), [a, b])

    def test_add_broadcast_gradcheck(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4,))
        assert_gradients_close(lambda x, y: (x + y).sum(), [a, b])

    def test_mul_gradcheck(self, rng):
        a = rng.normal(size=(2, 5))
        b = rng.normal(size=(2, 5))
        assert_gradients_close(lambda x, y: (x * y).sum(), [a, b])

    def test_mul_broadcast_scalar_shape(self, rng):
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(1, 1))
        assert_gradients_close(lambda x, y: (x * y).sum(), [a, b])

    def test_div_gradcheck(self, rng):
        a = rng.normal(size=(3, 3))
        b = rng.uniform(1.0, 2.0, size=(3, 3))
        assert_gradients_close(lambda x, y: (x / y).sum(), [a, b])

    def test_pow_gradcheck(self, rng):
        a = rng.uniform(0.5, 2.0, size=(4,))
        assert_gradients_close(lambda x: (x**3).sum(), [a])

    def test_rsub_and_radd(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (5.0 - x) + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0, -1.0])

    def test_neg_gradcheck(self, rng):
        a = rng.normal(size=(3,))
        assert_gradients_close(lambda x: (-x).sum(), [a])

    def test_matmul_gradcheck(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        assert_gradients_close(lambda x, y: (x @ y).sum(), [a, b])

    def test_batched_matmul_gradcheck(self, rng):
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(2, 4, 2))
        assert_gradients_close(lambda x, y: (x @ y).sum(), [a, b])

    def test_matmul_broadcast_gradcheck(self, rng):
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(4, 5))
        assert_gradients_close(lambda x, y: (x @ y).sum(), [a, b])

    def test_matmul_rejects_1d(self):
        with pytest.raises(ValueError, match="matmul"):
            Tensor(np.ones(3)) @ Tensor(np.ones((3, 2)))


class TestElementwise:
    @pytest.mark.parametrize(
        "name",
        ["exp", "tanh", "sigmoid", "sqrt", "abs", "relu", "leaky_relu"],
    )
    def test_unary_gradcheck(self, rng, name):
        a = rng.uniform(0.2, 2.0, size=(3, 3))  # positive, away from kinks
        assert_gradients_close(lambda x: getattr(x, name)().sum(), [a])

    def test_log_gradcheck(self, rng):
        a = rng.uniform(0.5, 3.0, size=(4,))
        assert_gradients_close(lambda x: x.log().sum(), [a])

    def test_relu_zeroes_negatives(self):
        x = Tensor([-1.0, 0.5], requires_grad=True)
        y = x.relu()
        np.testing.assert_allclose(y.data, [0.0, 0.5])
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_clip_gradient_masking(self):
        x = Tensor([-2.0, 0.0, 2.0], requires_grad=True)
        y = x.clip(-1.0, 1.0)
        np.testing.assert_allclose(y.data, [-1.0, 0.0, 1.0])
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis_gradcheck(self, rng):
        a = rng.normal(size=(3, 4, 2))
        assert_gradients_close(lambda x: x.sum(axis=1).sum(), [a])

    def test_sum_negative_axis(self, rng):
        a = rng.normal(size=(3, 4))
        assert_gradients_close(lambda x: x.sum(axis=-1).sum(), [a])

    def test_sum_keepdims_shape(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert x.sum(axis=1, keepdims=True).shape == (3, 1)

    def test_mean_matches_numpy(self, rng):
        data = rng.normal(size=(4, 5))
        x = Tensor(data)
        np.testing.assert_allclose(x.mean(axis=0).data, data.mean(axis=0))
        np.testing.assert_allclose(x.mean().data, data.mean())

    def test_mean_gradcheck(self, rng):
        a = rng.normal(size=(2, 6))
        assert_gradients_close(lambda x: x.mean(axis=-1).sum(), [a])

    def test_max_gradcheck_unique(self, rng):
        # Use well-separated values so the argmax never flips under eps.
        a = np.array([[1.0, 5.0, 2.0], [9.0, 3.0, 4.0]])
        assert_gradients_close(lambda x: x.max(axis=1).sum(), [a])

    def test_max_splits_gradient_among_ties(self):
        x = Tensor([[2.0, 2.0, 1.0]], requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5, 0.0]])


class TestShapes:
    def test_reshape_gradcheck(self, rng):
        a = rng.normal(size=(2, 6))
        assert_gradients_close(lambda x: (x.reshape(3, 4) ** 2).sum(), [a])

    def test_transpose_gradcheck(self, rng):
        a = rng.normal(size=(2, 3))
        assert_gradients_close(lambda x: (x.transpose(0, 1) ** 2).sum(), [a])

    def test_getitem_slice_gradcheck(self, rng):
        a = rng.normal(size=(4, 5))
        assert_gradients_close(lambda x: (x[1:3, ::2] ** 2).sum(), [a])

    def test_getitem_integer_array(self, rng):
        x = Tensor(rng.normal(size=(5, 2)), requires_grad=True)
        idx = np.array([0, 0, 3])
        y = x[idx]
        y.sum().backward()
        expected = np.zeros((5, 2))
        expected[0] = 2.0  # row selected twice accumulates twice
        expected[3] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_squeeze_unsqueeze_roundtrip(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        y = x.unsqueeze(1).squeeze(1)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))

    def test_broadcast_to_gradient_sums(self):
        x = Tensor([[1.0], [2.0]], requires_grad=True)
        y = x.broadcast_to((2, 3))
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [[3.0], [3.0]])


class TestCombinators:
    def test_cat_gradcheck(self, rng):
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(2, 2))
        assert_gradients_close(lambda x, y: (cat([x, y], axis=1) ** 2).sum(), [a, b])

    def test_cat_axis0(self, rng):
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(1, 3))
        assert_gradients_close(lambda x, y: (cat([x, y], axis=0) ** 2).sum(), [a, b])

    def test_stack_gradcheck(self, rng):
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(2, 3))
        assert_gradients_close(lambda x, y: (stack([x, y], axis=1) ** 2).sum(), [a, b])

    def test_where_routes_gradients(self):
        cond = np.array([True, False, True])
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([10.0, 20.0, 30.0], requires_grad=True)
        out = where(cond, a, b)
        np.testing.assert_allclose(out.data, [1.0, 20.0, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


class TestAutogradMachinery:
    def test_grad_accumulates_over_reuse(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x + x  # x used three times
        y.backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_diamond_graph(self):
        x = Tensor([3.0], requires_grad=True)
        a = x * 2.0
        b = x + 1.0
        y = a * b
        y.backward()
        # y = 2x(x+1) = 2x^2 + 2x, dy/dx = 4x + 2 = 14
        np.testing.assert_allclose(x.grad, [14.0])

    def test_backward_requires_scalar_without_grad_arg(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError, match="scalar"):
            (x * 2).backward()

    def test_backward_with_explicit_grad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        (x * 3.0).backward(np.full((2, 2), 2.0))
        np.testing.assert_allclose(x.grad, np.full((2, 2), 6.0))

    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_no_grad_is_thread_local(self):
        """A worker thread's no_grad must not leak into other threads.

        The async serving front-end runs inference on a worker pool while
        other threads may be training; the recording flag is per-thread.
        """
        import threading

        from repro.nn import is_grad_enabled

        entered = threading.Event()
        release = threading.Event()
        seen_in_worker: list[bool] = []

        def worker():
            with no_grad():
                seen_in_worker.append(is_grad_enabled())
                entered.set()
                release.wait(timeout=5.0)
            seen_in_worker.append(is_grad_enabled())

        thread = threading.Thread(target=worker)
        thread.start()
        assert entered.wait(timeout=5.0)
        # While the worker sits inside no_grad, this thread still records.
        assert is_grad_enabled()
        x = Tensor([1.0], requires_grad=True)
        assert (x * 2).requires_grad
        release.set()
        thread.join(timeout=5.0)
        assert seen_in_worker == [False, True]

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = x.detach() * 2
        assert not y.requires_grad

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_grad_reverse_flips_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = grad_reverse(x, scale=0.5)
        np.testing.assert_allclose(y.data, x.data)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [-0.5, -0.5])

    def test_second_backward_accumulates(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        (x * 2).backward()
        np.testing.assert_allclose(x.grad, [4.0])
