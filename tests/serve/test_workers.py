"""Process-level replica workers: spawn, replay, crash/stall chaos, lifecycle.

The worker plane moves the predictor forward into supervised child
processes while keeping every serving invariant: the queue, the
``batch_id`` sequence, and the per-flush RNG stay parent-side, so a chunk
run in a worker is bit-identical to the same chunk run in-process — and
``(seed, batch_id)`` replay verifies no matter where the forward ran.

The chaos tests SIGKILL workers mid-flush and inject deterministic
``crash``/``stall`` faults *inside* the child: in-flight requests must
resolve with typed errors (never hang — the conftest alarm enforces
that), the replica breaker must open, and the supervisor must respawn the
child so service recovers without operator action.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.lint import run_lint
from repro.serve import (
    AsyncServingServer,
    PredictRequest,
    RemoteServingError,
    ServerThread,
    ServingClient,
    WorkerCrashedError,
    WorkerPool,
    WorkerPredictor,
    WorkerSpawnError,
    WorkerSpec,
    WorkerStallError,
    collate_requests,
)
from repro.serve.batcher import batch_from_wire, batch_to_wire
from repro.serve.faults import CRASH_EXIT_CODE
from repro.serve.workers import (
    generator_from_wire,
    rng_state_to_wire,
    seeded_predictor,
)

SEEDED = "repro.serve.workers:seeded_predictor"
FAULTY = "repro.serve.workers:faulty_seeded_predictor"

#: Fast supervision knobs for tests — default timeouts are production-scale.
FAST = dict(chunk_timeout=15.0, start_timeout=60.0)


def make_obs(seed: int = 0, obs_len: int = 8) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.normal(size=(obs_len, 2)), axis=0)


def make_batch(n: int = 3, obs_len: int = 8):
    requests = [
        PredictRequest(request_id=f"r{i}", obs=make_obs(seed=i, obs_len=obs_len))
        for i in range(n)
    ]
    return collate_requests(requests)


def wait_until(predicate, timeout: float = 30.0, interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ----------------------------------------------------------------------
# WorkerSpec + wire helpers (no processes)
# ----------------------------------------------------------------------
class TestWorkerSpec:
    def test_json_round_trip(self):
        spec = WorkerSpec(factory=SEEDED, kwargs={"seed": 3, "method": "vanilla"})
        clone = WorkerSpec.from_json(spec.to_json())
        assert clone == spec

    @pytest.mark.parametrize("factory", ["", "noseparator", ":attr", "module:"])
    def test_malformed_factory_rejected(self, factory):
        with pytest.raises(ValueError, match="module:attribute"):
            WorkerSpec(factory=factory)

    def test_kwargs_must_be_dict(self):
        with pytest.raises(ValueError, match="kwargs"):
            WorkerSpec(factory=SEEDED, kwargs=[1, 2])

    def test_build_runs_factory_in_process(self):
        predictor = WorkerSpec(factory=SEEDED, kwargs={"seed": 0}).build()
        assert predictor.obs_len == 8 and predictor.pred_len == 12

    def test_build_rejects_non_predictor(self):
        spec = WorkerSpec(factory="builtins:dict", kwargs={})
        with pytest.raises(TypeError, match="predict_world"):
            spec.build()


class TestWireHelpers:
    def test_batch_round_trip_is_exact(self):
        batch = make_batch(4)
        clone = batch_from_wire(batch_to_wire(batch))
        np.testing.assert_array_equal(clone.obs, batch.obs)
        np.testing.assert_array_equal(clone.neighbours, batch.neighbours)
        np.testing.assert_array_equal(clone.neighbour_mask, batch.neighbour_mask)
        np.testing.assert_array_equal(clone.domain_ids, batch.domain_ids)
        np.testing.assert_array_equal(clone.origins, batch.origins)
        assert clone.neighbour_mask.dtype == np.bool_
        assert clone.domain_ids.dtype == np.int64
        assert clone.future.shape == batch.future.shape
        assert not clone.future.any()

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda w: w.pop("obs"),
            lambda w: w.update(obs="nonsense"),
            lambda w: w.update(obs=np.zeros((3,))),
            lambda w: w.update(pred_len="twelve"),
            lambda w: w.update(origins=np.zeros((99, 2))),
        ],
    )
    def test_malformed_wire_batch_raises_value_error(self, mutate):
        wire = batch_to_wire(make_batch(2))
        mutate(wire)
        with pytest.raises(ValueError):
            batch_from_wire(wire)

    def test_rng_state_round_trip_streams_identically(self):
        rng = np.random.default_rng(1234)
        rng.normal(size=7)  # advance past the initial state
        clone = generator_from_wire(rng_state_to_wire(rng))
        np.testing.assert_array_equal(clone.normal(size=32), rng.normal(size=32))

    @pytest.mark.parametrize("state", [None, "junk", {"bit_generator": "PCG64"}])
    def test_malformed_rng_state_raises_value_error(self, state):
        with pytest.raises(ValueError):
            generator_from_wire(state)


# ----------------------------------------------------------------------
# One live worker process: handshake, bit-identical replay, typed errors
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def worker():
    predictor = WorkerPredictor(
        WorkerSpec(factory=SEEDED, kwargs={"seed": 0}), label="t[0]", **FAST
    )
    yield predictor
    predictor.close()


class TestWorkerPredictor:
    def test_handshake_populates_shapes(self, worker):
        assert worker.obs_len == 8
        assert worker.pred_len == 12
        assert worker.alive and worker.pid is not None and worker.port is not None
        assert worker.pid != os.getpid()

    def test_forward_is_bit_identical_to_in_process(self, worker):
        batch = make_batch(3)
        local = seeded_predictor(seed=0)
        remote = worker.predict_world(batch, 5, np.random.default_rng(42))
        expected = local.predict_world(batch, 5, np.random.default_rng(42))
        np.testing.assert_array_equal(remote, expected)
        assert remote.dtype == np.float64

    def test_rng_state_is_consumed_not_reseeded(self, worker):
        # An advanced generator must produce a different draw than a fresh
        # one — proof the exact state crosses the process boundary.
        batch = make_batch(2)
        fresh = worker.predict_world(batch, 3, np.random.default_rng(7))
        advanced = np.random.default_rng(7)
        advanced.normal(size=100)
        moved = worker.predict_world(batch, 3, advanced)
        assert not np.array_equal(fresh, moved)

    def test_worker_side_error_is_typed_and_child_survives(self, worker):
        pid = worker.pid
        with pytest.raises(RemoteServingError) as excinfo:
            worker.predict_world(make_batch(2), 0, np.random.default_rng(0))
        assert excinfo.value.code == "bad_request"
        # A typed model-side error is not transport evidence: same child.
        assert worker.pid == pid and worker.alive
        assert worker.failures >= 1

    def test_worker_stats_shape(self, worker):
        stats = worker.worker_stats()
        assert set(stats) == {"pid", "port", "alive", "respawns", "chunks", "failures"}
        assert stats["chunks"] >= 1


# ----------------------------------------------------------------------
# Crash / stall supervision (dedicated workers — these kill children)
# ----------------------------------------------------------------------
class TestCrashAndRespawn:
    def test_sigkill_raises_typed_error_then_supervisor_respawns(self):
        predictor = WorkerPredictor(
            WorkerSpec(factory=SEEDED, kwargs={"seed": 0}), label="t[kill]", **FAST
        )
        try:
            batch = make_batch(2)
            before = predictor.predict_world(batch, 4, np.random.default_rng(5))
            first_pid = predictor.pid
            os.kill(first_pid, signal.SIGKILL)
            with pytest.raises(WorkerCrashedError):
                predictor.predict_world(batch, 4, np.random.default_rng(5))
            assert wait_until(lambda: predictor.alive), "supervisor never respawned"
            assert predictor.respawns >= 1
            assert predictor.pid != first_pid
            # Replay invariant across the respawn: same state, same samples.
            after = predictor.predict_world(batch, 4, np.random.default_rng(5))
            np.testing.assert_array_equal(after, before)
        finally:
            predictor.close()

    def test_stall_raises_worker_stall_error_and_respawns(self):
        # Rule fires on the second predict call only; the respawned child
        # gets a fresh plan, so call 3 (its first) is clean again.
        rules = [
            dict(site="predict", kind="stall", after=1, count=1, rate=1.0, delay=30.0)
        ]
        predictor = WorkerPredictor(
            WorkerSpec(factory=FAULTY, kwargs={"rules": rules, "seed": 0}),
            label="t[stall]",
            chunk_timeout=2.0,
        )
        try:
            batch = make_batch(2)
            ok = predictor.predict_world(batch, 3, np.random.default_rng(1))
            with pytest.raises(WorkerStallError):
                predictor.predict_world(batch, 3, np.random.default_rng(1))
            assert wait_until(lambda: predictor.alive), "supervisor never respawned"
            again = predictor.predict_world(batch, 3, np.random.default_rng(1))
            np.testing.assert_array_equal(again, ok)
        finally:
            predictor.close()

    def test_deterministic_crash_fault_exits_with_crash_code(self):
        rules = [dict(site="predict", kind="crash", after=0, count=1, rate=1.0)]
        predictor = WorkerPredictor(
            WorkerSpec(factory=FAULTY, kwargs={"rules": rules, "seed": 0}),
            label="t[crash]",
            **FAST,
        )
        try:
            proc = predictor._proc.proc
            with pytest.raises(WorkerCrashedError):
                predictor.predict_world(make_batch(2), 3, np.random.default_rng(0))
            assert proc.wait(timeout=10) == CRASH_EXIT_CODE
            assert wait_until(lambda: predictor.alive)
        finally:
            predictor.close()

    def test_close_is_idempotent_and_terminal(self):
        predictor = WorkerPredictor(
            WorkerSpec(factory=SEEDED, kwargs={"seed": 0}), label="t[close]", **FAST
        )
        pid = predictor.pid
        predictor.close()
        predictor.close()
        assert predictor.closed and not predictor.alive
        assert wait_until(lambda: not _pid_alive(pid), timeout=10)
        with pytest.raises(WorkerCrashedError, match="closed"):
            predictor.predict_world(make_batch(1), 2, np.random.default_rng(0))

    def test_broken_factory_fails_spawn_loudly(self):
        spec = WorkerSpec(factory="repro.serve.workers:does_not_exist")
        with pytest.raises(WorkerSpawnError):
            WorkerPredictor(spec, label="t[broken]", start_timeout=30.0)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    # The pid may be a zombie we haven't reaped (it is not our direct child
    # here) — consider any signalable pid alive; Popen reaping makes this
    # converge.
    return True


# ----------------------------------------------------------------------
# Through the server: chaos mid-flush, breaker, respawn, replay
# ----------------------------------------------------------------------
def start_worker_server(
    spec: WorkerSpec,
    *,
    workers: int = 1,
    seed: int = 7,
    num_samples: int = 4,
    **server_kwargs,
):
    server = AsyncServingServer(
        workers=workers + 1, max_in_flight=64, seed=seed, **server_kwargs
    )
    server.add_model(
        "m",
        spec,
        workers=workers,
        num_samples=num_samples,
        worker_chunk_timeout=15.0,
    )
    thread = ServerThread(server)
    host, port = thread.start()
    return server, thread, host, port


def replay_offline(records, *, seed: int, num_samples: int, reference) -> None:
    """Verify every served prediction from its ``(seed, batch_id)`` meta."""
    assert records, "chaos run produced no successful responses to replay"
    for obs, samples, meta in records:
        batch = collate_requests(
            [PredictRequest(request_id="replay", obs=obs)]
        )
        rng = np.random.default_rng((seed, meta["batch_id"]))
        expected = reference.predict_world(batch, num_samples, rng)
        np.testing.assert_allclose(
            samples, expected[:, meta["row"]], rtol=0, atol=1e-6
        )


class TestServerChaos:
    def test_sigkill_mid_flush_opens_breaker_then_recovers(self):
        # One worker, latency-padded forwards so the kill lands mid-flush.
        rules = [dict(site="predict", kind="latency", delay=0.6, rate=1.0)]
        spec = WorkerSpec(factory=FAULTY, kwargs={"rules": rules, "seed": 0})
        server, thread, host, port = start_worker_server(
            spec, breaker_threshold=1, breaker_cooldown=0.2
        )
        reference = seeded_predictor(seed=0)
        records, errors = [], []
        try:
            pool = server._worker_pools[0]
            slot = pool.predictors[0]
            client = ServingClient.connect(host, port, binary=True, dtype="f8")
            obs = make_obs(seed=3)

            warm, meta = client.predict("m", obs, return_meta=True)
            records.append((obs, warm, meta))
            victim = slot.pid

            def doomed_request():
                doomed = ServingClient.connect(host, port, binary=True, dtype="f8")
                try:
                    doomed.predict("m", make_obs(seed=4))
                except RemoteServingError as error:
                    errors.append(error)
                finally:
                    doomed.close()

            in_flight = threading.Thread(target=doomed_request)
            in_flight.start()
            # Let the request reach the worker (latency rule holds it there),
            # then kill the child out from under the flush.
            time.sleep(0.3)
            os.kill(victim, signal.SIGKILL)
            in_flight.join(timeout=30)
            assert not in_flight.is_alive(), "in-flight request hung after SIGKILL"
            assert len(errors) == 1, "in-flight request did not fail typed"
            assert errors[0].code in ("internal", "unavailable")

            # The single replica's breaker is open: until the respawned child
            # passes a half-open probe, requests fast-fail as unavailable.
            saw_unavailable = False
            recovered = None
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                try:
                    samples, meta = client.predict("m", obs, return_meta=True)
                except RemoteServingError as error:
                    assert error.code in ("unavailable", "internal")
                    saw_unavailable = saw_unavailable or error.code == "unavailable"
                    time.sleep(0.1)
                else:
                    recovered = (obs, samples, meta)
                    break
            assert recovered is not None, "service never recovered after respawn"
            records.append(recovered)
            assert saw_unavailable, "breaker never fast-failed while worker was down"

            assert slot.respawns >= 1 and slot.pid != victim
            stats = client.stats()["models"]["m"]
            worker_stats = [r["worker"] for r in stats["replicas"]]
            assert all(w is not None for w in worker_stats)
            assert sum(w["respawns"] for w in worker_stats) >= 1
            client.close()
        finally:
            thread.stop()
        replay_offline(records, seed=7, num_samples=4, reference=reference)

    def test_deterministic_crash_kind_trips_breaker_and_replays(self):
        # The 3rd predict call hard-exits the child: two clean responses,
        # one typed failure, automatic recovery — no signal racing needed.
        rules = [dict(site="predict", kind="crash", after=2, count=1, rate=1.0)]
        spec = WorkerSpec(factory=FAULTY, kwargs={"rules": rules, "seed": 0})
        server, thread, host, port = start_worker_server(
            spec, breaker_threshold=1, breaker_cooldown=0.2
        )
        reference = seeded_predictor(seed=0)
        records = []
        try:
            client = ServingClient.connect(host, port, binary=True, dtype="f8")
            for i in range(2):
                obs = make_obs(seed=10 + i)
                samples, meta = client.predict("m", obs, return_meta=True)
                records.append((obs, samples, meta))

            with pytest.raises(RemoteServingError) as excinfo:
                client.predict("m", make_obs(seed=12))
            assert excinfo.value.code in ("internal", "unavailable")

            obs = make_obs(seed=13)
            deadline = time.monotonic() + 30
            while True:
                try:
                    samples, meta = client.predict("m", obs, return_meta=True)
                    break
                except RemoteServingError:
                    assert time.monotonic() < deadline, "never recovered from crash"
                    time.sleep(0.1)
            records.append((obs, samples, meta))
            client.close()
        finally:
            thread.stop()
        replay_offline(records, seed=7, num_samples=4, reference=reference)


# ----------------------------------------------------------------------
# Server lifecycle around worker pools
# ----------------------------------------------------------------------
class TestServerLifecycle:
    def test_stop_kills_all_children(self):
        spec = WorkerSpec(factory=SEEDED, kwargs={"seed": 0})
        server, thread, host, port = start_worker_server(spec, workers=2)
        pool = server._worker_pools[0]
        pids = [p.pid for p in pool.predictors]
        assert len(pids) == 2 and all(pids)
        client = ServingClient.connect(host, port, binary=True, dtype="f8")
        client.predict("m", make_obs(seed=1))
        client.close()
        thread.stop()
        assert all(p.closed and not p.alive for p in pool.predictors)
        assert wait_until(
            lambda: not any(_pid_alive(pid) for pid in pids), timeout=10
        ), "server stop leaked worker children"

    def test_workers_requires_worker_spec(self):
        server = AsyncServingServer()
        with pytest.raises(ValueError, match="WorkerSpec"):
            server.add_model("m", seeded_predictor(seed=0), workers=2)

    def test_swap_model_promotes_pool_spawned_workers(self):
        spec = WorkerSpec(factory=SEEDED, kwargs={"seed": 0})
        server, thread, host, port = start_worker_server(spec, workers=1)
        try:
            pool = server._worker_pools[0]
            old = list(pool.predictors)
            client = ServingClient.connect(host, port, binary=True, dtype="f8")
            before = client.predict("m", make_obs(seed=2))
            info = thread.swap_model(
                "m", lambda: pool.spawn_predictor(label="m[swap]"), replicas=1
            )
            assert info["replicas"] == 1
            after = client.predict("m", make_obs(seed=2))
            assert before.shape == after.shape
            # Old children were drained then closed; new ones serve.
            assert wait_until(
                lambda: all(p.closed for p in old), timeout=10
            ), "swap_model left the replaced workers running"
            client.close()
        finally:
            thread.stop()


# ----------------------------------------------------------------------
# Satellite guard: no hardcoded TCP ports anywhere (bind port 0 only).
# The audit itself lives in repro.lint (REP-NET, see docs/lint.md).
# ----------------------------------------------------------------------
class TestNoHardcodedPorts:
    def test_repo_binds_ephemeral_ports_only(self):
        assert run_lint(str(Path(__file__).resolve().parents[2]), select={"REP-NET"}) == []
