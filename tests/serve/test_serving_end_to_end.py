"""End-to-end serving: stream sim-domain points, match offline predictions.

This is the ISSUE-2 acceptance demo as a test: synthetic observations from
the social-force simulator stream through ``repro.serve`` and every agent
gets ``[K, pred_len, 2]`` world-frame futures identical (1e-6) to the
offline ``predict_samples`` evaluation path, with no gradient state
allocated anywhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import OBS_LEN, PRED_LEN, TrajectoryDataset, TrajectorySample
from repro.serve import Predictor, ServingEngine
from repro.sim.generator import simulate_scene


@pytest.fixture(scope="module")
def streamed_scene():
    scene = simulate_scene("sdd", num_frames=OBS_LEN + PRED_LEN + 4, rng=9)
    start = 2
    window = OBS_LEN + PRED_LEN
    tracks = [t for t in scene.tracks if t.covers(start, start + window)]
    assert len(tracks) >= 2, "simulation produced too few full tracks"
    return scene, tracks, start


def offline_batch(tracks, start):
    """The offline evaluation batch for the same windows the stream carries."""
    mid = start + OBS_LEN
    samples = []
    for track in tracks:
        neighbours = [
            other.slice_frames(start, mid)
            for other in tracks
            if other.agent_id != track.agent_id
        ]
        samples.append(
            TrajectorySample(
                obs=track.slice_frames(start, mid),
                future=track.slice_frames(mid, mid + PRED_LEN),
                neighbours=np.stack(neighbours)
                if neighbours
                else np.zeros((0, OBS_LEN, 2)),
                domain="sdd",
            )
        )
    return TrajectoryDataset(samples, domains=["sdd"]).collate(range(len(samples)))


@pytest.mark.parametrize("fixture_name", ["trained_vanilla", "trained_adaptraj"])
def test_streamed_predictions_match_offline(fixture_name, streamed_scene, request):
    method = request.getfixturevalue(fixture_name)
    scene, tracks, start = streamed_scene
    mid = start + OBS_LEN
    num_samples = 2

    engine = ServingEngine(
        Predictor(method), num_samples=num_samples, max_batch_size=64, rng=0
    )
    for frame in range(start, mid):
        engine.ingest_frame(
            frame,
            {t.agent_id: tuple(t.positions[frame - t.start_frame]) for t in tracks},
        )
    served = engine.predict_ready(mid - 1)
    assert set(served) == {t.agent_id for t in tracks}

    batch = offline_batch(tracks, start)
    offline = method.predict(batch, num_samples, np.random.default_rng(0))
    offline_world = offline + batch.origins[None, :, None, :]
    for row, track in enumerate(tracks):
        assert served[track.agent_id].shape == (num_samples, PRED_LEN, 2)
        np.testing.assert_allclose(
            served[track.agent_id], offline_world[:, row], atol=1e-6
        )


def test_serving_allocates_no_grad_state(trained_vanilla, streamed_scene):
    """Inference mode: no parameter grads, and the module tree stays in the
    training state it had before serving."""
    scene, tracks, start = streamed_scene
    mid = start + OBS_LEN
    module = trained_vanilla.module()
    module.zero_grad()
    assert module.training  # training-mode by default

    engine = ServingEngine(Predictor(trained_vanilla), num_samples=1, rng=0)
    for frame in range(start, mid):
        engine.ingest_frame(
            frame,
            {t.agent_id: tuple(t.positions[frame - t.start_frame]) for t in tracks},
        )
    engine.predict_ready(mid - 1)

    assert all(p.grad is None for p in module.parameters())
    assert module.training  # restored, not force-reset


def test_compiled_engine_matches_eager_engine(trained_vanilla, streamed_scene):
    """``ServingEngine(compile=True)`` serves bit-identical predictions to
    the eager engine on the same stream, and actually hits the plan cache."""
    scene, tracks, start = streamed_scene
    mid = start + OBS_LEN

    def run_engine(compile_flag):
        predictor = Predictor(trained_vanilla)
        engine = ServingEngine(
            predictor, num_samples=2, max_batch_size=64, rng=0, compile=compile_flag
        )
        for frame in range(start, mid):
            engine.ingest_frame(
                frame,
                {t.agent_id: tuple(t.positions[frame - t.start_frame]) for t in tracks},
            )
        return engine.predict_ready(mid - 1), predictor

    eager_served, _ = run_engine(False)
    compiled_served, compiled_predictor = run_engine(True)
    stats = compiled_predictor.compile_stats()
    assert stats["broken"] is None and stats["plans"] > 0, stats
    assert set(eager_served) == set(compiled_served)
    for agent_id in eager_served:
        np.testing.assert_array_equal(eager_served[agent_id], compiled_served[agent_id])
