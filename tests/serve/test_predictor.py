"""Predictor contract tests: frames, registry coordinates, RNG, compile.

Covers in isolation what the end-to-end serving suites only exercise
implicitly: the world-frame origin round trip of :meth:`predict_world`, the
``describe()``/``__repr__`` registry coordinates, the int-``rng``
determinism contract of :meth:`predict`, and the compiled fast path
(plan-per-shape-bucket caching, eager fallback, stats surface).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import build_method
from repro.data.dataset import Batch
from repro.serve.predictor import Predictor


def make_batch(batch_size=5, neighbours=3, seed=0, obs_len=8, pred_len=12):
    rng = np.random.default_rng(seed)
    return Batch(
        obs=rng.standard_normal((batch_size, obs_len, 2)) * 0.1,
        future=np.zeros((batch_size, pred_len, 2)),
        neighbours=rng.standard_normal((batch_size, neighbours, obs_len, 2)) * 0.1,
        neighbour_mask=rng.random((batch_size, neighbours)) < 0.7,
        domain_ids=np.zeros(batch_size, dtype=np.int64),
        origins=rng.standard_normal((batch_size, 2)) * 5.0,
    )


@pytest.fixture(scope="module")
def vanilla_pecnet():
    return build_method("vanilla", "pecnet", num_domains=1, rng=0)


class TestWorldFrame:
    def test_predict_world_is_predict_plus_origins(self, vanilla_pecnet):
        predictor = Predictor(vanilla_pecnet)
        batch = make_batch(seed=1)
        normalized = predictor.predict(batch, num_samples=3, rng=7)
        world = predictor.predict_world(batch, num_samples=3, rng=7)
        np.testing.assert_allclose(
            world, normalized + batch.origins[None, :, None, :], atol=1e-12
        )

    def test_round_trip_recovers_normalized_frame(self, vanilla_pecnet):
        predictor = Predictor(vanilla_pecnet)
        batch = make_batch(seed=2)
        world = predictor.predict_world(batch, num_samples=2, rng=3)
        back = world - batch.origins[None, :, None, :]
        np.testing.assert_allclose(
            back, predictor.predict(batch, num_samples=2, rng=3), atol=1e-12
        )


class TestDescribe:
    def test_registry_coordinates(self, vanilla_pecnet):
        predictor = Predictor(vanilla_pecnet, name="pecnet-prod", version=4)
        text = predictor.describe()
        assert "pecnet-prod:v4" in text
        assert "method=vanilla" in text
        assert "backbone=pecnet" in text
        assert repr(predictor) == text

    def test_unregistered(self, vanilla_pecnet):
        assert "unregistered" in Predictor(vanilla_pecnet).describe()

    def test_compiled_flag_shown(self, vanilla_pecnet):
        predictor = Predictor(vanilla_pecnet, compile=True)
        assert "compiled" in predictor.describe()
        predictor.set_compile(False)
        assert "compiled" not in predictor.describe()


class TestRngContract:
    def test_same_int_seed_is_bit_identical(self, vanilla_pecnet):
        predictor = Predictor(vanilla_pecnet)
        batch = make_batch(seed=3)
        first = predictor.predict(batch, num_samples=4, rng=123)
        # Interleave an unrelated call: per-call int seeding must not share
        # generator state across requests.
        predictor.predict(batch, num_samples=2, rng=9)
        second = predictor.predict(batch, num_samples=4, rng=123)
        assert np.array_equal(first, second)

    def test_same_seed_identical_across_frames_and_compile(self, vanilla_pecnet):
        eager = Predictor(vanilla_pecnet)
        compiled = Predictor(vanilla_pecnet, compile=True)
        batch = make_batch(seed=4)
        assert np.array_equal(
            eager.predict(batch, 3, rng=55), compiled.predict(batch, 3, rng=55)
        )
        assert np.array_equal(
            eager.predict_world(batch, 3, rng=55),
            compiled.predict_world(batch, 3, rng=55),
        )

    def test_generator_rng_hands_over_stream(self, vanilla_pecnet):
        predictor = Predictor(vanilla_pecnet)
        batch = make_batch(seed=5)
        gen = np.random.default_rng(8)
        first = predictor.predict(batch, 2, rng=gen)
        second = predictor.predict(batch, 2, rng=gen)  # stream advanced
        assert not np.array_equal(first, second)


class TestCompiledFastPath:
    def test_plan_cache_one_entry_per_shape_bucket(self, vanilla_pecnet):
        predictor = Predictor(vanilla_pecnet, compile=True)
        predictor.predict(make_batch(5, 3, seed=1), 2, rng=0)
        predictor.predict(make_batch(5, 3, seed=2), 2, rng=1)  # same bucket
        predictor.predict(make_batch(4, 3, seed=3), 2, rng=2)  # new bucket
        predictor.predict(make_batch(5, 3, seed=4), 3, rng=3)  # new num_samples
        stats = predictor.compile_stats()
        assert stats["plans"] == 3
        assert stats["hits"] == 1 and stats["misses"] == 3
        assert stats["broken"] is None and stats["fallbacks"] == 0

    def test_compiled_matches_eager_across_buckets(self, vanilla_pecnet):
        eager = Predictor(vanilla_pecnet)
        compiled = Predictor(vanilla_pecnet, compile=True)
        for shape_seed, (bs, k) in enumerate([(1, 2), (6, 4), (3, 1)]):
            batch = make_batch(bs, k, seed=shape_seed)
            assert np.array_equal(
                eager.predict(batch, 4, rng=shape_seed),
                compiled.predict(batch, 4, rng=shape_seed),
            )

    def test_uncapturable_method_falls_back_to_eager(self):
        method = build_method("counter", "pecnet", num_domains=2, rng=0)
        eager = Predictor(method)
        compiled = Predictor(method, compile=True)
        batch = make_batch(seed=6)
        assert np.array_equal(
            eager.predict(batch, 2, rng=11), compiled.predict(batch, 2, rng=11)
        )
        stats = compiled.compile_stats()
        assert stats["broken"] is not None
        assert stats["fallbacks"] > 0 and stats["plans"] == 0

    def test_set_compile_toggles(self, vanilla_pecnet):
        predictor = Predictor(vanilla_pecnet)
        assert not predictor.compile
        predictor.set_compile(True)
        batch = make_batch(seed=7)
        predictor.predict(batch, 2, rng=0)
        assert predictor.compile_stats()["plans"] == 1
        predictor.set_compile(False)
        predictor.predict(batch, 2, rng=0)
        # Disabled: no new hits/misses recorded.
        assert predictor.compile_stats()["hits"] == 0
