"""Wire-protocol unit tests: framing, schema validation, error typing."""

from __future__ import annotations

import struct

import pytest

from repro.serve import protocol
from repro.serve.protocol import ProtocolError


class TestFraming:
    def test_round_trip(self):
        message = {"v": 1, "id": 3, "op": "health", "x": [1.5, -2.0]}
        frame = protocol.encode_frame(message)
        length = struct.unpack(">I", frame[:4])[0]
        assert length == len(frame) - 4
        assert protocol.decode_payload(frame[4:]) == message

    def test_header_is_big_endian_u32(self):
        frame = protocol.encode_frame({})
        assert frame[:4] == b"\x00\x00\x00\x02"  # '{}'

    def test_oversized_frame_rejected_on_encode(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 16)
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.encode_frame({"data": "x" * 100})

    def test_oversized_length_rejected_on_read(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 16)
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol._check_length(17)

    def test_non_json_payload_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            protocol.decode_payload(b"\xff\xfe")

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.decode_payload(b"[1, 2]")


class TestMessages:
    def test_request_builder(self):
        message = protocol.request("predict", 9, model="m")
        assert message == {
            "v": protocol.PROTOCOL_VERSION,
            "id": 9,
            "op": "predict",
            "model": "m",
        }

    def test_ok_and_error_responses(self):
        ok = protocol.ok_response(4, {"a": 1})
        assert ok["ok"] and ok["id"] == 4 and ok["result"] == {"a": 1}
        err = protocol.error_response(4, protocol.E_OVERLOADED, "busy")
        assert not err["ok"]
        assert err["error"] == {"code": "overloaded", "message": "busy"}

    def test_validate_accepts_every_operation(self):
        for op in protocol.OPERATIONS:
            assert protocol.validate_request(protocol.request(op, 1)) == (op, 1)

    def test_validate_rejects_missing_id(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.validate_request({"v": 1, "op": "health"})
        assert excinfo.value.code == protocol.E_BAD_REQUEST

    def test_validate_rejects_wrong_version(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.validate_request({"v": 99, "id": 1, "op": "health"})
        assert excinfo.value.code == protocol.E_UNSUPPORTED_VERSION

    def test_validate_rejects_unknown_op(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.validate_request({"v": 1, "id": 1, "op": "train"})
        assert excinfo.value.code == protocol.E_UNKNOWN_OP


class TestSyncFraming:
    def test_socketpair_round_trip(self):
        import socket

        a, b = socket.socketpair()
        try:
            protocol.write_frame_sync(a, {"v": 1, "id": 1, "op": "health"})
            protocol.write_frame_sync(a, {"v": 1, "id": 2, "op": "stats"})
            first = protocol.read_frame_sync(b)
            second = protocol.read_frame_sync(b)
            assert (first["id"], second["id"]) == (1, 2)
            a.close()
            assert protocol.read_frame_sync(b) is None  # clean EOF
        finally:
            a.close()
            b.close()

    def test_mid_frame_eof_raises(self):
        import socket

        a, b = socket.socketpair()
        try:
            frame = protocol.encode_frame({"v": 1, "id": 1, "op": "health"})
            a.sendall(frame[: len(frame) - 3])  # truncate inside the payload
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                protocol.read_frame_sync(b)
        finally:
            b.close()
