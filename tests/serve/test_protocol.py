"""Wire-protocol unit tests: framing, schema validation, error typing."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.serve import protocol
from repro.serve.protocol import ProtocolError


class TestFraming:
    def test_round_trip(self):
        message = {"v": 1, "id": 3, "op": "health", "x": [1.5, -2.0]}
        frame = protocol.encode_frame(message)
        length = struct.unpack(">I", frame[:4])[0]
        assert length == len(frame) - 4
        assert protocol.decode_payload(frame[4:]) == message

    def test_header_is_big_endian_u32(self):
        frame = protocol.encode_frame({})
        assert frame[:4] == b"\x00\x00\x00\x02"  # '{}'

    def test_oversized_frame_rejected_on_encode(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 16)
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.encode_frame({"data": "x" * 100})

    def test_oversized_length_rejected_on_read(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 16)
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol._check_length(17)

    def test_non_json_payload_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            protocol.decode_payload(b"\xff\xfe")

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.decode_payload(b"[1, 2]")


class TestMessages:
    def test_request_builder(self):
        message = protocol.request("predict", 9, model="m")
        assert message == {
            "v": protocol.PROTOCOL_VERSION,
            "id": 9,
            "op": "predict",
            "model": "m",
        }

    def test_ok_and_error_responses(self):
        ok = protocol.ok_response(4, {"a": 1})
        assert ok["ok"] and ok["id"] == 4 and ok["result"] == {"a": 1}
        err = protocol.error_response(4, protocol.E_OVERLOADED, "busy")
        assert not err["ok"]
        assert err["error"] == {"code": "overloaded", "message": "busy"}

    def test_validate_accepts_every_operation(self):
        for op in protocol.OPERATIONS:
            assert protocol.validate_request(protocol.request(op, 1)) == (op, 1)

    def test_validate_rejects_missing_id(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.validate_request({"v": 1, "op": "health"})
        assert excinfo.value.code == protocol.E_BAD_REQUEST

    def test_validate_rejects_wrong_version(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.validate_request({"v": 99, "id": 1, "op": "health"})
        assert excinfo.value.code == protocol.E_UNSUPPORTED_VERSION

    def test_validate_rejects_unknown_op(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.validate_request({"v": 1, "id": 1, "op": "train"})
        assert excinfo.value.code == protocol.E_UNKNOWN_OP


class TestSyncFraming:
    def test_socketpair_round_trip(self):
        import socket

        a, b = socket.socketpair()
        try:
            protocol.write_frame_sync(a, {"v": 1, "id": 1, "op": "health"})
            protocol.write_frame_sync(a, {"v": 1, "id": 2, "op": "stats"})
            first = protocol.read_frame_sync(b)
            second = protocol.read_frame_sync(b)
            assert (first["id"], second["id"]) == (1, 2)
            a.close()
            assert protocol.read_frame_sync(b) is None  # clean EOF
        finally:
            a.close()
            b.close()

    def test_mid_frame_eof_raises(self):
        import socket

        a, b = socket.socketpair()
        try:
            frame = protocol.encode_frame({"v": 1, "id": 1, "op": "health"})
            a.sendall(frame[: len(frame) - 3])  # truncate inside the payload
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                protocol.read_frame_sync(b)
        finally:
            b.close()


class TestBinaryFraming:
    """Protocol v2: kind-byte dispatch, envelope + tensor-tail round trips."""

    @staticmethod
    def make_message(dtype=np.float64):
        rng = np.random.default_rng(0)
        return {
            "v": 2,
            "id": 5,
            "ok": True,
            "result": {
                "samples": rng.normal(size=(4, 12, 2)).astype(dtype),
                "meta": {"batch_id": 3, "row": 0, "batch_size": 1},
                "agents": [
                    {"samples": rng.normal(size=(2, 3, 2)).astype(dtype)},
                ],
            },
        }

    def assert_messages_equal(self, decoded, original):
        assert decoded["id"] == original["id"]
        np.testing.assert_array_equal(
            decoded["result"]["samples"], original["result"]["samples"]
        )
        np.testing.assert_array_equal(
            decoded["result"]["agents"][0]["samples"],
            original["result"]["agents"][0]["samples"],
        )
        assert decoded["result"]["meta"] == original["result"]["meta"]

    def test_binary_round_trip_float64(self):
        message = self.make_message(np.float64)
        frame = protocol.encode_binary_frame(message)
        assert frame[4] == protocol.KIND_BINARY
        decoded = protocol.decode_payload(frame[4:])
        assert decoded["result"]["samples"].dtype == np.float64
        self.assert_messages_equal(decoded, message)

    def test_binary_round_trip_float32(self):
        message = self.make_message(np.float32)
        decoded = protocol.decode_payload(protocol.encode_binary_frame(message)[4:])
        assert decoded["result"]["samples"].dtype == np.float32
        self.assert_messages_equal(decoded, message)

    def test_decoded_tensors_are_writable_copies(self):
        message = {"v": 2, "id": 1, "obs": np.ones((8, 2))}
        decoded = protocol.decode_payload(protocol.encode_binary_frame(message)[4:])
        decoded["obs"][0, 0] = 9.0  # must not raise: owned, writable memory

    def test_auto_encoding_picks_json_without_tensors(self):
        message = {"v": 2, "id": 1, "op": "health"}
        frame = protocol.encode_frame_auto(message)
        assert frame[4:5] == b"{"
        assert protocol.decode_payload(frame[4:]) == message

    def test_auto_encoding_picks_binary_with_tensors(self):
        message = {"v": 2, "id": 1, "op": "predict", "obs": np.zeros((8, 2))}
        frame = protocol.encode_frame_auto(message)
        assert frame[4] == protocol.KIND_BINARY

    def test_v1_json_frames_are_byte_identical(self):
        """A v1 peer's frames decode unchanged: pure-JSON framing is frozen."""
        message = {"v": 1, "id": 7, "op": "health"}
        frame = protocol.encode_frame(message)
        assert frame[4:5] == b"{"
        assert protocol.decode_payload(frame[4:]) == message

    def test_binary_wire_is_little_endian_raw(self):
        """The tail is the raw little-endian image of the array (the spec)."""
        obs = np.arange(4, dtype=np.float64).reshape(2, 2)
        frame = protocol.encode_binary_frame({"v": 2, "id": 1, "obs": obs})
        assert frame.endswith(obs.astype("<f8").tobytes())

    def test_integer_tensor_rejected(self):
        with pytest.raises(ProtocolError, match="float32/float64"):
            protocol.encode_binary_frame({"v": 2, "x": np.arange(3)})

    def test_reserved_envelope_key_rejected(self):
        with pytest.raises(ProtocolError, match="reserved"):
            protocol.encode_binary_frame({"v": 2, "x": {"__tensor__": 1}})

    def test_oversized_binary_frame_rejected(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 64)
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.encode_binary_frame({"v": 2, "x": np.zeros(100)})

    def test_truncated_binary_payload_rejected(self):
        frame = protocol.encode_binary_frame({"v": 2, "id": 1, "x": np.zeros(4)})
        with pytest.raises(ProtocolError, match="too short"):
            protocol.decode_payload(frame[4:5])  # kind byte alone
        with pytest.raises(ProtocolError, match="overruns"):
            protocol.decode_payload(frame[4:9])  # envelope bytes cut off

    @pytest.mark.parametrize(
        "corruption, match",
        [
            ({"dtype": "<i8"}, "dtype"),
            ({"shape": [-1, 2]}, "shape"),
            ({"shape": "nope"}, "shape"),
            ({"nbytes": 7}, "does not match"),
            ({"offset": 10_000}, "outside"),
            ({"offset": "x"}, "integers"),
        ],
    )
    def test_corrupt_tensor_descriptor_rejected(self, corruption, match):
        import json

        frame = protocol.encode_binary_frame({"v": 2, "id": 1, "x": np.zeros((2, 2))})
        payload = frame[4:]
        (elen,) = struct.unpack_from(">I", payload, 1)
        envelope = json.loads(payload[5 : 5 + elen].decode())
        envelope["x"]["__tensor__"].update(corruption)
        new_env = json.dumps(envelope, separators=(",", ":")).encode()
        rebuilt = (
            bytes((protocol.KIND_BINARY,))
            + struct.pack(">I", len(new_env))
            + new_env
            + payload[5 + elen :]
        )
        with pytest.raises(ProtocolError, match=match):
            protocol.decode_payload(rebuilt)

    def test_binary_frames_cross_the_sync_socket(self):
        import socket

        a, b = socket.socketpair()
        try:
            message = {"v": 2, "id": 1, "op": "predict", "obs": np.ones((8, 2))}
            frame = protocol.encode_frame_auto(message)
            a.sendall(frame)
            received, nbytes = protocol.read_frame_sync_ex(b)
            assert nbytes == len(frame)
            np.testing.assert_array_equal(received["obs"], message["obs"])
        finally:
            a.close()
            b.close()


class TestVersionNegotiation:
    def test_both_supported_versions_validate(self):
        for version in protocol.SUPPORTED_VERSIONS:
            message = {"v": version, "id": 1, "op": "health"}
            assert protocol.validate_request(message) == ("health", 1)

    def test_request_builder_stamps_current_version(self):
        assert protocol.request("health", 1)["v"] == protocol.PROTOCOL_VERSION
        assert protocol.PROTOCOL_VERSION == 2


# ----------------------------------------------------------------------
# Fuzz wall: garbage bytes against live endpoints (server + worker host)
# ----------------------------------------------------------------------
def corrupt_descriptor_frame() -> bytes:
    """A full wire frame whose binary tensor descriptor lies about dtype."""
    import json

    frame = protocol.encode_binary_frame(
        {"v": 2, "id": 1, "op": "predict", "model": "stub", "obs": np.zeros((8, 2))}
    )
    payload = frame[4:]
    (elen,) = struct.unpack_from(">I", payload, 1)
    envelope = json.loads(payload[5 : 5 + elen].decode())
    envelope["obs"]["__tensor__"]["dtype"] = "<i8"
    new_env = json.dumps(envelope, separators=(",", ":")).encode()
    rebuilt = (
        bytes((protocol.KIND_BINARY,))
        + struct.pack(">I", len(new_env))
        + new_env
        + payload[5 + elen :]
    )
    return struct.pack(">I", len(rebuilt)) + rebuilt


#: Byte blobs that corrupt the *framing* layer: the only safe answer is to
#: sever the connection (the stream can no longer be trusted) — never to
#: hang, and never to die with an unhandled traceback.
GARBAGE_FRAMES = [
    pytest.param(lambda: struct.pack(">I", 0xFFFF_FFF0), id="oversized-length-prefix"),
    pytest.param(lambda: struct.pack(">I", 100) + b"x" * 10, id="truncated-frame"),
    pytest.param(lambda: struct.pack(">I", 8) + b"\x03garbage", id="unknown-kind-byte"),
    pytest.param(lambda: struct.pack(">I", 0), id="zero-length-frame"),
    pytest.param(lambda: struct.pack(">I", 9) + b"not json!", id="unparseable-json"),
    pytest.param(
        lambda: struct.pack(">I", 3) + b"[1]", id="json-but-not-an-object"
    ),
    pytest.param(corrupt_descriptor_frame, id="corrupt-tensor-descriptor"),
    pytest.param(lambda: b"\x00\x00", id="eof-inside-length-prefix"),
]


class _FuzzStub:
    """Minimal predictor so the fuzzed server has a registered model."""

    obs_len = 8
    pred_len = 12

    def predict_world(self, batch, num_samples, rng):
        return np.zeros((num_samples, batch.obs.shape[0], self.pred_len, 2))


@pytest.fixture(scope="module")
def fuzz_server():
    from repro.serve import AsyncServingServer, ServerThread

    server = AsyncServingServer(workers=2, max_in_flight=16)
    server.add_model("stub", _FuzzStub())
    thread = ServerThread(server)
    host, port = thread.start()
    yield host, port
    thread.stop()


@pytest.fixture(scope="module")
def fuzz_worker():
    from repro.serve.workers import WorkerPredictor, WorkerSpec

    predictor = WorkerPredictor(
        WorkerSpec(factory="repro.serve.workers:seeded_predictor", kwargs={"seed": 0}),
        label="fuzz",
    )
    yield "127.0.0.1", predictor.port
    predictor.close()


def throw_bytes(address, blob: bytes):
    """Send raw bytes, then report how the peer reacted.

    Returns ``("closed", None)`` for a clean close/EOF, ``("reply", frame)``
    when the peer answered a well-formed frame.  A hang surfaces as
    ``socket.timeout`` and fails the test.
    """
    import socket

    with socket.create_connection(address, timeout=10) as sock:
        sock.settimeout(10)
        sock.sendall(blob)
        try:
            sock.shutdown(socket.SHUT_WR)  # truncation cases: garbage then EOF
        except OSError:
            return "closed", None  # peer already severed the connection
        try:
            frame = protocol.read_frame_sync(sock)
        except (ProtocolError, ConnectionError):
            return "closed", None
        return ("closed", None) if frame is None else ("reply", frame)


def roundtrip(address, message: dict):
    """One well-formed request → its response frame, on a fresh connection."""
    import socket

    with socket.create_connection(address, timeout=10) as sock:
        sock.settimeout(10)
        protocol.write_frame_sync(sock, message)
        return protocol.read_frame_sync(sock)


class TestServerFuzz:
    @pytest.mark.parametrize("blob", GARBAGE_FRAMES)
    def test_garbage_framing_closes_cleanly(self, fuzz_server, blob):
        outcome, frame = throw_bytes(fuzz_server, blob())
        if outcome == "reply":  # a reply is acceptable only as a typed error
            assert frame["ok"] is False and frame["error"]["code"]
        # Collateral check: the listener itself must have survived.
        health = roundtrip(fuzz_server, protocol.request("health", 1))
        assert health["ok"] is True

    def test_unknown_op_is_typed_not_fatal(self, fuzz_server):
        reply = roundtrip(fuzz_server, protocol.request("worker_chunk", 1))
        assert reply["ok"] is False
        assert reply["error"]["code"] == protocol.E_UNKNOWN_OP

    def test_bad_id_is_typed_bad_request(self, fuzz_server):
        reply = roundtrip(fuzz_server, {"v": 2, "id": {"nested": 1}, "op": "health"})
        assert reply["ok"] is False
        assert reply["error"]["code"] == protocol.E_BAD_REQUEST

    def test_server_survives_sustained_garbage(self, fuzz_server):
        rng = np.random.default_rng(0)
        for _ in range(25):
            blob = rng.bytes(int(rng.integers(1, 200)))
            throw_bytes(fuzz_server, blob)
        health = roundtrip(fuzz_server, protocol.request("health", 1))
        assert health["ok"] is True


class TestWorkerHostFuzz:
    """The same wall, against a live worker child's handshake socket."""

    @pytest.mark.parametrize("blob", GARBAGE_FRAMES)
    def test_garbage_framing_closes_cleanly(self, fuzz_worker, blob):
        outcome, frame = throw_bytes(fuzz_worker, blob())
        if outcome == "reply":
            assert frame["ok"] is False and frame["error"]["code"]
        hello = roundtrip(fuzz_worker, protocol.request("worker_handshake", 1))
        assert hello["ok"] is True
        assert hello["result"]["obs_len"] == 8

    def test_serving_plane_op_rejected_on_worker_plane(self, fuzz_worker):
        reply = roundtrip(fuzz_worker, protocol.request("predict", 1, model="m"))
        assert reply["ok"] is False
        assert reply["error"]["code"] == protocol.E_UNKNOWN_OP

    def test_malformed_chunk_fields_are_typed_bad_request(self, fuzz_worker):
        reply = roundtrip(
            fuzz_worker,
            protocol.request("worker_chunk", 2, batch="junk", rng_state=None),
        )
        assert reply["ok"] is False
        assert reply["error"]["code"] == protocol.E_BAD_REQUEST

    def test_worker_survives_sustained_garbage(self, fuzz_worker):
        rng = np.random.default_rng(1)
        for _ in range(25):
            throw_bytes(fuzz_worker, rng.bytes(int(rng.integers(1, 200))))
        hello = roundtrip(fuzz_worker, protocol.request("worker_handshake", 9))
        assert hello["ok"] is True
