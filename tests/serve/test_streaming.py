"""Streaming-window tests: fill/gap semantics, readiness, neighbour assembly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import StreamingWindows


def feed_track(windows: StreamingWindows, agent_id, start: int, points: np.ndarray):
    for offset, (x, y) in enumerate(points):
        windows.push(agent_id, start + offset, x, y)


class TestWindowLifecycle:
    def test_not_ready_until_full(self):
        windows = StreamingWindows(obs_len=4)
        for frame in range(3):
            windows.push("a", frame, float(frame), 0.0)
            assert windows.ready_agents(frame) == []
        windows.push("a", 3, 3.0, 0.0)
        assert windows.ready_agents(3) == ["a"]

    def test_window_slides(self):
        windows = StreamingWindows(obs_len=3)
        feed_track(windows, "a", 0, [(float(f), 0.0) for f in range(5)])
        [request] = windows.requests(4)
        np.testing.assert_array_equal(request.obs[:, 0], [2.0, 3.0, 4.0])

    def test_stale_agent_not_ready(self):
        windows = StreamingWindows(obs_len=3)
        feed_track(windows, "a", 0, [(0.0, 0.0)] * 3)
        assert windows.ready_agents(2) == ["a"]
        # No point at frame 3: the agent's window is not current there.
        assert windows.ready_agents(3) == []

    def test_gap_resets_window(self):
        windows = StreamingWindows(obs_len=3)
        feed_track(windows, "a", 0, [(0.0, 0.0)] * 3)
        windows.push("a", 5, 9.0, 9.0)  # frames 3-4 missing
        assert windows.ready_agents(5) == []
        windows.push("a", 6, 9.0, 9.0)
        windows.push("a", 7, 9.0, 9.0)
        assert windows.ready_agents(7) == ["a"]

    def test_duplicate_frame_keeps_latest(self):
        windows = StreamingWindows(obs_len=2)
        windows.push("a", 0, 1.0, 1.0)
        windows.push("a", 0, 2.0, 2.0)
        windows.push("a", 1, 3.0, 3.0)
        [request] = windows.requests(1)
        np.testing.assert_array_equal(request.obs, [[2.0, 2.0], [3.0, 3.0]])

    def test_evict_and_drop_stale(self):
        windows = StreamingWindows(obs_len=2)
        feed_track(windows, "a", 0, [(0.0, 0.0)] * 2)
        feed_track(windows, "b", 0, [(1.0, 1.0)] * 2)
        windows.evict("a")
        assert windows.num_agents == 1
        windows.push("b", 2, 1.0, 1.0)
        feed_track(windows, "c", 10, [(2.0, 2.0)] * 2)
        assert windows.drop_stale(frame=11, max_age=3) == 1  # "b" last seen at 2
        assert windows.num_agents == 1


class TestConcurrentServingEdgeCases:
    """Edge cases the network front-end hits: gap-reset races, duplicate
    deliveries, and agent-id collisions across clients."""

    def test_gap_reset_then_immediate_reobservation(self):
        """A gap must discard the stale history entirely: the rebuilt window
        becomes ready only after obs_len fresh consecutive frames, and its
        contents are exclusively post-gap points."""
        windows = StreamingWindows(obs_len=3)
        feed_track(windows, "a", 0, [(float(f), 0.0) for f in range(3)])
        assert windows.ready_agents(2) == ["a"]
        # Network hiccup: frames 3-5 lost; the stream resumes at 6.
        windows.push("a", 6, 100.0, 0.0)
        assert windows.ready_agents(6) == []  # one fresh point != a window
        windows.push("a", 7, 101.0, 0.0)
        assert windows.ready_agents(7) == []
        windows.push("a", 8, 102.0, 0.0)
        [request] = windows.requests(8)
        # No pre-gap coordinate may leak into the rebuilt window.
        np.testing.assert_array_equal(request.obs[:, 0], [100.0, 101.0, 102.0])

    def test_gap_reset_midfill_discards_partial_history(self):
        """A gap while the window is still filling also restarts the count."""
        windows = StreamingWindows(obs_len=3)
        windows.push("a", 0, 0.0, 0.0)
        windows.push("a", 1, 1.0, 0.0)
        windows.push("a", 3, 9.0, 0.0)  # frame 2 missing
        windows.push("a", 4, 10.0, 0.0)
        assert windows.ready_agents(4) == []  # only 2 post-gap points
        windows.push("a", 5, 11.0, 0.0)
        [request] = windows.requests(5)
        np.testing.assert_array_equal(request.obs[:, 0], [9.0, 10.0, 11.0])

    def test_duplicate_agent_frame_update_on_full_window(self):
        """Redelivery of the current frame (retry, at-least-once transport)
        overwrites that frame's point without shifting the window."""
        windows = StreamingWindows(obs_len=3)
        feed_track(windows, "a", 0, [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)])
        windows.push("a", 2, 2.5, 0.5)  # corrected measurement for frame 2
        [request] = windows.requests(2)
        np.testing.assert_array_equal(
            request.obs, [[0.0, 0.0], [1.0, 0.0], [2.5, 0.5]]
        )
        # Still exactly one window; the duplicate did not advance time.
        assert windows.ready_agents(3) == []

    def test_duplicate_updates_do_not_inflate_readiness(self):
        """N deliveries of one frame must not count as N distinct frames."""
        windows = StreamingWindows(obs_len=3)
        for _ in range(5):
            windows.push("a", 0, 1.0, 1.0)
        assert windows.ready_agents(0) == []  # one real frame observed

    def test_interleaved_agent_id_collision_single_instance(self):
        """Two traffic sources sharing one StreamingWindows and one agent id
        interleave into a single (last-write-wins) history — the documented
        hazard that makes the server keep windows per connection."""
        windows = StreamingWindows(obs_len=2)
        # Source 1 and source 2 both claim agent id "x" at the same frames.
        windows.push("x", 0, 0.0, 0.0)    # source 1
        windows.push("x", 0, 50.0, 50.0)  # source 2 overwrites frame 0
        windows.push("x", 1, 1.0, 0.0)    # source 1
        windows.push("x", 1, 51.0, 50.0)  # source 2 overwrites frame 1
        [request] = windows.requests(1)
        # One coherent (if wrong-for-source-1) window; never a mix that
        # fabricates a jump within one frame, and never two windows.
        np.testing.assert_array_equal(request.obs, [[50.0, 50.0], [51.0, 50.0]])
        assert windows.num_agents == 1

    def test_interleaved_multi_client_isolation_with_separate_instances(self):
        """The server-side arrangement: one StreamingWindows per client makes
        colliding agent ids structurally independent."""
        client_one = StreamingWindows(obs_len=2)
        client_two = StreamingWindows(obs_len=2)
        for frame in range(2):
            # Interleaved arrival order, same agent id, different tracks.
            client_one.push("agent", frame, float(frame), 0.0)
            client_two.push("agent", frame, 50.0 + frame, 9.0)
        [one] = client_one.requests(1)
        [two] = client_two.requests(1)
        np.testing.assert_array_equal(one.obs, [[0.0, 0.0], [1.0, 0.0]])
        np.testing.assert_array_equal(two.obs, [[50.0, 9.0], [51.0, 9.0]])
        assert one.num_neighbours == 0 and two.num_neighbours == 0

    def test_out_of_order_replay_resets_like_a_gap(self):
        """A frame arriving from the past (replayed backlog) cannot extend a
        window; it restarts the history at that point."""
        windows = StreamingWindows(obs_len=2)
        windows.push("a", 5, 5.0, 0.0)
        windows.push("a", 6, 6.0, 0.0)
        assert windows.ready_agents(6) == ["a"]
        windows.push("a", 3, 3.0, 0.0)  # stale replay
        assert windows.ready_agents(6) == []
        assert windows.ready_agents(3) == []  # and not ready in the past either
        windows.push("a", 4, 4.0, 0.0)
        [request] = windows.requests(4)
        np.testing.assert_array_equal(request.obs[:, 0], [3.0, 4.0])


class TestRequestAssembly:
    def test_neighbours_are_other_ready_agents(self):
        windows = StreamingWindows(obs_len=2)
        feed_track(windows, "a", 0, [(0.0, 0.0), (1.0, 0.0)])
        feed_track(windows, "b", 0, [(5.0, 5.0), (6.0, 5.0)])
        feed_track(windows, "c", 1, [(9.0, 9.0)])  # not ready yet
        requests = {r.request_id[0]: r for r in windows.requests(1)}
        assert set(requests) == {"a", "b"}
        assert requests["a"].num_neighbours == 1
        np.testing.assert_array_equal(
            requests["a"].neighbours[0], [[5.0, 5.0], [6.0, 5.0]]
        )
        np.testing.assert_array_equal(
            requests["b"].neighbours[0], [[0.0, 0.0], [1.0, 0.0]]
        )

    def test_max_neighbours_keeps_nearest(self):
        windows = StreamingWindows(obs_len=1, max_neighbours=2)
        windows.push("focal", 0, 0.0, 0.0)
        for i, distance in enumerate([30.0, 10.0, 20.0]):
            windows.push(f"n{i}", 0, distance, 0.0)
        request = windows.requests(0)[0]
        assert request.num_neighbours == 2
        np.testing.assert_array_equal(
            sorted(request.neighbours[:, -1, 0]), [10.0, 20.0]
        )

    def test_request_ids_carry_frame(self):
        windows = StreamingWindows(obs_len=1)
        windows.push("a", 7, 0.0, 0.0)
        [request] = windows.requests(7)
        assert request.request_id == ("a", 7)

    def test_no_ready_agents_empty(self):
        windows = StreamingWindows(obs_len=4)
        assert windows.requests(0) == []

    def test_rejects_bad_obs_len(self):
        with pytest.raises(ValueError):
            StreamingWindows(obs_len=0)

    def test_request_buffers_are_copies(self):
        """Emitted windows must not alias the live ring buffers."""
        windows = StreamingWindows(obs_len=2)
        feed_track(windows, "a", 0, [(0.0, 0.0), (1.0, 0.0)])
        feed_track(windows, "b", 0, [(2.0, 0.0), (3.0, 0.0)])
        [ra, rb] = windows.requests(1)
        windows.push("a", 2, 99.0, 99.0)
        np.testing.assert_array_equal(ra.obs[:, 0], [0.0, 1.0])
        np.testing.assert_array_equal(rb.neighbours[0][:, 0], [0.0, 1.0])
