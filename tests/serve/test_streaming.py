"""Streaming-window tests: fill/gap semantics, readiness, neighbour assembly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import StreamingWindows


def feed_track(windows: StreamingWindows, agent_id, start: int, points: np.ndarray):
    for offset, (x, y) in enumerate(points):
        windows.push(agent_id, start + offset, x, y)


class TestWindowLifecycle:
    def test_not_ready_until_full(self):
        windows = StreamingWindows(obs_len=4)
        for frame in range(3):
            windows.push("a", frame, float(frame), 0.0)
            assert windows.ready_agents(frame) == []
        windows.push("a", 3, 3.0, 0.0)
        assert windows.ready_agents(3) == ["a"]

    def test_window_slides(self):
        windows = StreamingWindows(obs_len=3)
        feed_track(windows, "a", 0, [(float(f), 0.0) for f in range(5)])
        [request] = windows.requests(4)
        np.testing.assert_array_equal(request.obs[:, 0], [2.0, 3.0, 4.0])

    def test_stale_agent_not_ready(self):
        windows = StreamingWindows(obs_len=3)
        feed_track(windows, "a", 0, [(0.0, 0.0)] * 3)
        assert windows.ready_agents(2) == ["a"]
        # No point at frame 3: the agent's window is not current there.
        assert windows.ready_agents(3) == []

    def test_gap_resets_window(self):
        windows = StreamingWindows(obs_len=3)
        feed_track(windows, "a", 0, [(0.0, 0.0)] * 3)
        windows.push("a", 5, 9.0, 9.0)  # frames 3-4 missing
        assert windows.ready_agents(5) == []
        windows.push("a", 6, 9.0, 9.0)
        windows.push("a", 7, 9.0, 9.0)
        assert windows.ready_agents(7) == ["a"]

    def test_duplicate_frame_keeps_latest(self):
        windows = StreamingWindows(obs_len=2)
        windows.push("a", 0, 1.0, 1.0)
        windows.push("a", 0, 2.0, 2.0)
        windows.push("a", 1, 3.0, 3.0)
        [request] = windows.requests(1)
        np.testing.assert_array_equal(request.obs, [[2.0, 2.0], [3.0, 3.0]])

    def test_evict_and_drop_stale(self):
        windows = StreamingWindows(obs_len=2)
        feed_track(windows, "a", 0, [(0.0, 0.0)] * 2)
        feed_track(windows, "b", 0, [(1.0, 1.0)] * 2)
        windows.evict("a")
        assert windows.num_agents == 1
        windows.push("b", 2, 1.0, 1.0)
        feed_track(windows, "c", 10, [(2.0, 2.0)] * 2)
        assert windows.drop_stale(frame=11, max_age=3) == 1  # "b" last seen at 2
        assert windows.num_agents == 1


class TestRequestAssembly:
    def test_neighbours_are_other_ready_agents(self):
        windows = StreamingWindows(obs_len=2)
        feed_track(windows, "a", 0, [(0.0, 0.0), (1.0, 0.0)])
        feed_track(windows, "b", 0, [(5.0, 5.0), (6.0, 5.0)])
        feed_track(windows, "c", 1, [(9.0, 9.0)])  # not ready yet
        requests = {r.request_id[0]: r for r in windows.requests(1)}
        assert set(requests) == {"a", "b"}
        assert requests["a"].num_neighbours == 1
        np.testing.assert_array_equal(
            requests["a"].neighbours[0], [[5.0, 5.0], [6.0, 5.0]]
        )
        np.testing.assert_array_equal(
            requests["b"].neighbours[0], [[0.0, 0.0], [1.0, 0.0]]
        )

    def test_max_neighbours_keeps_nearest(self):
        windows = StreamingWindows(obs_len=1, max_neighbours=2)
        windows.push("focal", 0, 0.0, 0.0)
        for i, distance in enumerate([30.0, 10.0, 20.0]):
            windows.push(f"n{i}", 0, distance, 0.0)
        request = windows.requests(0)[0]
        assert request.num_neighbours == 2
        np.testing.assert_array_equal(
            sorted(request.neighbours[:, -1, 0]), [10.0, 20.0]
        )

    def test_request_ids_carry_frame(self):
        windows = StreamingWindows(obs_len=1)
        windows.push("a", 7, 0.0, 0.0)
        [request] = windows.requests(7)
        assert request.request_id == ("a", 7)

    def test_no_ready_agents_empty(self):
        windows = StreamingWindows(obs_len=4)
        assert windows.requests(0) == []

    def test_rejects_bad_obs_len(self):
        with pytest.raises(ValueError):
            StreamingWindows(obs_len=0)

    def test_request_buffers_are_copies(self):
        """Emitted windows must not alias the live ring buffers."""
        windows = StreamingWindows(obs_len=2)
        feed_track(windows, "a", 0, [(0.0, 0.0), (1.0, 0.0)])
        feed_track(windows, "b", 0, [(2.0, 0.0), (3.0, 0.0)])
        [ra, rb] = windows.requests(1)
        windows.push("a", 2, 99.0, 99.0)
        np.testing.assert_array_equal(ra.obs[:, 0], [0.0, 1.0])
        np.testing.assert_array_equal(rb.neighbours[0][:, 0], [0.0, 1.0])
