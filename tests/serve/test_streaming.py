"""Streaming-window tests: fill/gap semantics, readiness, neighbour assembly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import StreamingWindows


def feed_track(windows: StreamingWindows, agent_id, start: int, points: np.ndarray):
    for offset, (x, y) in enumerate(points):
        windows.push(agent_id, start + offset, x, y)


class TestWindowLifecycle:
    def test_not_ready_until_full(self):
        windows = StreamingWindows(obs_len=4)
        for frame in range(3):
            windows.push("a", frame, float(frame), 0.0)
            assert windows.ready_agents(frame) == []
        windows.push("a", 3, 3.0, 0.0)
        assert windows.ready_agents(3) == ["a"]

    def test_window_slides(self):
        windows = StreamingWindows(obs_len=3)
        feed_track(windows, "a", 0, [(float(f), 0.0) for f in range(5)])
        [request] = windows.requests(4)
        np.testing.assert_array_equal(request.obs[:, 0], [2.0, 3.0, 4.0])

    def test_stale_agent_not_ready(self):
        windows = StreamingWindows(obs_len=3)
        feed_track(windows, "a", 0, [(0.0, 0.0)] * 3)
        assert windows.ready_agents(2) == ["a"]
        # No point at frame 3: the agent's window is not current there.
        assert windows.ready_agents(3) == []

    def test_gap_resets_window(self):
        windows = StreamingWindows(obs_len=3)
        feed_track(windows, "a", 0, [(0.0, 0.0)] * 3)
        windows.push("a", 5, 9.0, 9.0)  # frames 3-4 missing
        assert windows.ready_agents(5) == []
        windows.push("a", 6, 9.0, 9.0)
        windows.push("a", 7, 9.0, 9.0)
        assert windows.ready_agents(7) == ["a"]

    def test_duplicate_frame_keeps_latest(self):
        windows = StreamingWindows(obs_len=2)
        windows.push("a", 0, 1.0, 1.0)
        windows.push("a", 0, 2.0, 2.0)
        windows.push("a", 1, 3.0, 3.0)
        [request] = windows.requests(1)
        np.testing.assert_array_equal(request.obs, [[2.0, 2.0], [3.0, 3.0]])

    def test_evict_and_drop_stale(self):
        windows = StreamingWindows(obs_len=2)
        feed_track(windows, "a", 0, [(0.0, 0.0)] * 2)
        feed_track(windows, "b", 0, [(1.0, 1.0)] * 2)
        windows.evict("a")
        assert windows.num_agents == 1
        windows.push("b", 2, 1.0, 1.0)
        feed_track(windows, "c", 10, [(2.0, 2.0)] * 2)
        assert windows.drop_stale(frame=11, max_age=3) == 1  # "b" last seen at 2
        assert windows.num_agents == 1


class TestConcurrentServingEdgeCases:
    """Edge cases the network front-end hits: gap-reset races, duplicate
    deliveries, and agent-id collisions across clients."""

    def test_gap_reset_then_immediate_reobservation(self):
        """A gap must discard the stale history entirely: the rebuilt window
        becomes ready only after obs_len fresh consecutive frames, and its
        contents are exclusively post-gap points."""
        windows = StreamingWindows(obs_len=3)
        feed_track(windows, "a", 0, [(float(f), 0.0) for f in range(3)])
        assert windows.ready_agents(2) == ["a"]
        # Network hiccup: frames 3-5 lost; the stream resumes at 6.
        windows.push("a", 6, 100.0, 0.0)
        assert windows.ready_agents(6) == []  # one fresh point != a window
        windows.push("a", 7, 101.0, 0.0)
        assert windows.ready_agents(7) == []
        windows.push("a", 8, 102.0, 0.0)
        [request] = windows.requests(8)
        # No pre-gap coordinate may leak into the rebuilt window.
        np.testing.assert_array_equal(request.obs[:, 0], [100.0, 101.0, 102.0])

    def test_gap_reset_midfill_discards_partial_history(self):
        """A gap while the window is still filling also restarts the count."""
        windows = StreamingWindows(obs_len=3)
        windows.push("a", 0, 0.0, 0.0)
        windows.push("a", 1, 1.0, 0.0)
        windows.push("a", 3, 9.0, 0.0)  # frame 2 missing
        windows.push("a", 4, 10.0, 0.0)
        assert windows.ready_agents(4) == []  # only 2 post-gap points
        windows.push("a", 5, 11.0, 0.0)
        [request] = windows.requests(5)
        np.testing.assert_array_equal(request.obs[:, 0], [9.0, 10.0, 11.0])

    def test_duplicate_agent_frame_update_on_full_window(self):
        """Redelivery of the current frame (retry, at-least-once transport)
        overwrites that frame's point without shifting the window."""
        windows = StreamingWindows(obs_len=3)
        feed_track(windows, "a", 0, [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)])
        windows.push("a", 2, 2.5, 0.5)  # corrected measurement for frame 2
        [request] = windows.requests(2)
        np.testing.assert_array_equal(
            request.obs, [[0.0, 0.0], [1.0, 0.0], [2.5, 0.5]]
        )
        # Still exactly one window; the duplicate did not advance time.
        assert windows.ready_agents(3) == []

    def test_duplicate_updates_do_not_inflate_readiness(self):
        """N deliveries of one frame must not count as N distinct frames."""
        windows = StreamingWindows(obs_len=3)
        for _ in range(5):
            windows.push("a", 0, 1.0, 1.0)
        assert windows.ready_agents(0) == []  # one real frame observed

    def test_interleaved_agent_id_collision_single_instance(self):
        """Two traffic sources sharing one StreamingWindows and one agent id
        interleave into a single (last-write-wins) history — the documented
        hazard that makes the server keep windows per connection."""
        windows = StreamingWindows(obs_len=2)
        # Source 1 and source 2 both claim agent id "x" at the same frames.
        windows.push("x", 0, 0.0, 0.0)    # source 1
        windows.push("x", 0, 50.0, 50.0)  # source 2 overwrites frame 0
        windows.push("x", 1, 1.0, 0.0)    # source 1
        windows.push("x", 1, 51.0, 50.0)  # source 2 overwrites frame 1
        [request] = windows.requests(1)
        # One coherent (if wrong-for-source-1) window; never a mix that
        # fabricates a jump within one frame, and never two windows.
        np.testing.assert_array_equal(request.obs, [[50.0, 50.0], [51.0, 50.0]])
        assert windows.num_agents == 1

    def test_interleaved_multi_client_isolation_with_separate_instances(self):
        """The server-side arrangement: one StreamingWindows per client makes
        colliding agent ids structurally independent."""
        client_one = StreamingWindows(obs_len=2)
        client_two = StreamingWindows(obs_len=2)
        for frame in range(2):
            # Interleaved arrival order, same agent id, different tracks.
            client_one.push("agent", frame, float(frame), 0.0)
            client_two.push("agent", frame, 50.0 + frame, 9.0)
        [one] = client_one.requests(1)
        [two] = client_two.requests(1)
        np.testing.assert_array_equal(one.obs, [[0.0, 0.0], [1.0, 0.0]])
        np.testing.assert_array_equal(two.obs, [[50.0, 9.0], [51.0, 9.0]])
        assert one.num_neighbours == 0 and two.num_neighbours == 0

    def test_out_of_order_replay_resets_like_a_gap(self):
        """A frame arriving from the past (replayed backlog) cannot extend a
        window; it restarts the history at that point."""
        windows = StreamingWindows(obs_len=2)
        windows.push("a", 5, 5.0, 0.0)
        windows.push("a", 6, 6.0, 0.0)
        assert windows.ready_agents(6) == ["a"]
        windows.push("a", 3, 3.0, 0.0)  # stale replay
        assert windows.ready_agents(6) == []
        assert windows.ready_agents(3) == []  # and not ready in the past either
        windows.push("a", 4, 4.0, 0.0)
        [request] = windows.requests(4)
        np.testing.assert_array_equal(request.obs[:, 0], [3.0, 4.0])


class TestRequestAssembly:
    def test_neighbours_are_other_ready_agents(self):
        windows = StreamingWindows(obs_len=2)
        feed_track(windows, "a", 0, [(0.0, 0.0), (1.0, 0.0)])
        feed_track(windows, "b", 0, [(5.0, 5.0), (6.0, 5.0)])
        feed_track(windows, "c", 1, [(9.0, 9.0)])  # not ready yet
        requests = {r.request_id[0]: r for r in windows.requests(1)}
        assert set(requests) == {"a", "b"}
        assert requests["a"].num_neighbours == 1
        np.testing.assert_array_equal(
            requests["a"].neighbours[0], [[5.0, 5.0], [6.0, 5.0]]
        )
        np.testing.assert_array_equal(
            requests["b"].neighbours[0], [[0.0, 0.0], [1.0, 0.0]]
        )

    def test_max_neighbours_keeps_nearest(self):
        windows = StreamingWindows(obs_len=1, max_neighbours=2)
        windows.push("focal", 0, 0.0, 0.0)
        for i, distance in enumerate([30.0, 10.0, 20.0]):
            windows.push(f"n{i}", 0, distance, 0.0)
        request = windows.requests(0)[0]
        assert request.num_neighbours == 2
        np.testing.assert_array_equal(
            sorted(request.neighbours[:, -1, 0]), [10.0, 20.0]
        )

    def test_request_ids_carry_frame(self):
        windows = StreamingWindows(obs_len=1)
        windows.push("a", 7, 0.0, 0.0)
        [request] = windows.requests(7)
        assert request.request_id == ("a", 7)

    def test_no_ready_agents_empty(self):
        windows = StreamingWindows(obs_len=4)
        assert windows.requests(0) == []

    def test_rejects_bad_obs_len(self):
        with pytest.raises(ValueError):
            StreamingWindows(obs_len=0)

    def test_request_buffers_are_copies(self):
        """Emitted windows must not alias the live ring buffers."""
        windows = StreamingWindows(obs_len=2)
        feed_track(windows, "a", 0, [(0.0, 0.0), (1.0, 0.0)])
        feed_track(windows, "b", 0, [(2.0, 0.0), (3.0, 0.0)])
        [ra, rb] = windows.requests(1)
        windows.push("a", 2, 99.0, 99.0)
        np.testing.assert_array_equal(ra.obs[:, 0], [0.0, 1.0])
        np.testing.assert_array_equal(rb.neighbours[0][:, 0], [0.0, 1.0])


class TestAgentWindowPushEdgeCases:
    """`_AgentWindow.push` delivery pathologies the PR 4 suite missed.

    The invariant under test: whenever a window is emitted (``window_at``
    returns an array), it equals the **last obs_len contiguously-delivered
    points** — duplicates overwrite, anything non-contiguous restarts the
    window from the offending point.
    """

    @staticmethod
    def point(value):
        return np.array((float(value), -float(value)))

    def make_window(self, obs_len=4):
        from repro.serve.streaming import _AgentWindow

        return _AgentWindow(obs_len)

    def feed(self, window, deliveries):
        """Push ``(frame, value)`` pairs, tracking the contiguity oracle."""
        contiguous: list[tuple[int, np.ndarray]] = []
        for frame, value in deliveries:
            xy = self.point(value)
            window.push(frame, xy)
            if contiguous and frame == contiguous[-1][0]:
                contiguous[-1] = (frame, xy)  # duplicate: last write wins
            elif contiguous and frame == contiguous[-1][0] + 1:
                contiguous.append((frame, xy))
            else:
                contiguous = [(frame, xy)]  # gap / replay: restart here
        return contiguous

    def assert_matches_oracle(self, window, contiguous, obs_len=4):
        frame = contiguous[-1][0]
        if len(contiguous) >= obs_len:
            expected = np.stack([xy for _, xy in contiguous[-obs_len:]])
            emitted = window.window_at(frame)
            assert emitted is not None, "full contiguous history must be ready"
            np.testing.assert_array_equal(emitted, expected)
        else:
            assert window.window_at(frame) is None

    def test_duplicate_frame_while_empty(self):
        """A duplicate delivered right after a gap reset (filled == 0) must
        restart the window at that point, not corrupt the empty buffer."""
        window = self.make_window()
        window.push(10, self.point(1))
        window.push(12, self.point(2))  # gap: resets, window = [p12]
        assert window.filled == 1
        # Deliver frame 12 again while the restart is still mid-fill.
        contiguous = self.feed(window, [(12, 9), (13, 3), (14, 4), (15, 5)])
        # NB: feed() restarted its oracle at (12, 9) — exactly what push does.
        assert window.filled == 4
        self.assert_matches_oracle(window, contiguous)

    def test_duplicate_first_delivery_of_fresh_window(self):
        window = self.make_window()
        contiguous = self.feed(
            window, [(5, 0), (5, 1), (6, 2), (7, 3), (8, 4)]
        )
        self.assert_matches_oracle(window, contiguous)
        # The duplicate overwrote in place: frame 5 contributes value 1.
        np.testing.assert_array_equal(window.buffer[0], self.point(1))

    def test_out_of_order_replay_restarts_from_stale_point(self):
        """A frame earlier than ``last_frame`` is a replay: the window must
        restart from the stale point and only re-fill contiguously."""
        window = self.make_window()
        self.feed(window, [(0, 0), (1, 1), (2, 2), (3, 3)])
        assert window.window_at(3) is not None
        contiguous = self.feed(window, [(1, 11)])  # replay of frame 1
        assert window.filled == 1
        assert window.window_at(1) is None  # nothing is ready mid-restart
        contiguous = self.feed(window, [(2, 12), (3, 13), (4, 14)])
        contiguous = [(1, self.point(11))] + contiguous[-3:]
        # feed() restarted its own oracle at (2, 12) because it only saw the
        # tail; rebuild the true contiguous run including the replayed 1.
        expected = np.stack(
            [self.point(v) for v in (11, 12, 13, 14)]
        )
        np.testing.assert_array_equal(window.window_at(4), expected)

    def test_duplicate_then_gap(self):
        """A duplicate followed by a gap must reset; the duplicate must not
        mask the discontinuity."""
        window = self.make_window()
        self.feed(window, [(0, 0), (1, 1), (1, 9), (5, 5)])
        assert window.filled == 1
        assert window.window_at(5) is None
        contiguous = self.feed(window, [(6, 6), (7, 7), (8, 8)])
        expected = np.stack([self.point(v) for v in (5, 6, 7, 8)])
        np.testing.assert_array_equal(window.window_at(8), expected)

    def test_messy_delivery_sequence_against_oracle(self):
        """Duplicates, replays, and gaps interleaved: every emission along
        the way must equal the last obs_len contiguous points."""
        deliveries = [
            (0, 0), (1, 1), (1, 2), (2, 3), (3, 4), (4, 5),     # dup mid-fill
            (2, 6),                                             # replay
            (3, 7), (4, 8), (5, 9), (5, 10), (6, 11),           # rebuild + dup
            (9, 12),                                            # gap
            (10, 13), (11, 14), (12, 15), (13, 16), (13, 17),   # rebuild + dup
        ]
        window = self.make_window()
        contiguous: list[tuple[int, np.ndarray]] = []
        for frame, value in deliveries:
            contiguous = self.feed_one(window, contiguous, frame, value)
            self.assert_matches_oracle(window, contiguous)

    def feed_one(self, window, contiguous, frame, value):
        xy = self.point(value)
        window.push(frame, xy)
        contiguous = list(contiguous)
        if contiguous and frame == contiguous[-1][0]:
            contiguous[-1] = (frame, xy)
        elif contiguous and frame == contiguous[-1][0] + 1:
            contiguous.append((frame, xy))
        else:
            contiguous = [(frame, xy)]
        return contiguous

    def test_streaming_windows_surface_the_same_behaviour(self):
        """The same invariant through the public StreamingWindows API."""
        windows = StreamingWindows(obs_len=3)
        for frame, value in [(0, 0), (1, 1), (1, 9), (3, 3)]:
            windows.push("a", frame, float(value), -float(value))
        assert windows.ready_agents(3) == []  # gap after the duplicate: reset
        windows.push("a", 4, 4.0, -4.0)
        windows.push("a", 5, 5.0, -5.0)
        assert windows.ready_agents(5) == ["a"]
        [request] = windows.requests(5)
        expected = np.array([[3.0, -3.0], [4.0, -4.0], [5.0, -5.0]])
        np.testing.assert_array_equal(request.obs, expected)
