"""Observability end-to-end: trace meta, metrics op, error accounting.

Runs a real ``AsyncServingServer`` on a loopback socket (same topology as
``test_server.py``) and exercises the PR-7 telemetry surface: per-request
stage traces over both wire encodings, the ``metrics`` operation, the
replica error counters, and read-only ops during drain.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serve import (
    AsyncServingServer,
    RemoteServingError,
    ServerThread,
    ServingClient,
)
from repro.serve import protocol

MODEL = "stub"
LATENCY_KEY = f"serve_latency_seconds{{model={MODEL}}}"
#: Stages every explicit predict must report (encode is server-side only).
EXPECTED_STAGES = {"admission", "queue_wait", "coalesce", "route", "inference"}


class StubPredictor:
    """Deterministic row-wise predictor (velocity extrapolation)."""

    pred_len = 12
    obs_len = 8

    def __init__(self, fail: bool = False) -> None:
        self.fail = fail
        self.batch_sizes: list[int] = []

    def predict_world(self, batch, num_samples, rng):
        if self.fail:
            raise RuntimeError("model melted")
        self.batch_sizes.append(batch.size)
        velocity = batch.obs[:, -1] - batch.obs[:, -2]
        steps = np.arange(1, self.pred_len + 1)[None, :, None]
        future = batch.obs[:, -1][:, None, :] + velocity[:, None, :] * steps
        world = future + batch.origins[:, None, :]
        return np.repeat(world[None], num_samples, axis=0)


def make_obs(seed: int = 0, obs_len: int = 8) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.normal(size=(obs_len, 2)), axis=0)


@pytest.fixture
def running(request):
    """(server, host, port, predictor) around the ``server_config`` marker."""
    marker = request.node.get_closest_marker("server_config")
    kwargs = dict(marker.kwargs) if marker else {}
    model_kwargs = kwargs.pop("model", {})
    predictor = kwargs.pop("predictor", None) or StubPredictor()
    server = AsyncServingServer(**{"max_in_flight": 64, "workers": 2, **kwargs})
    server.add_model(MODEL, predictor, **model_kwargs)
    thread = ServerThread(server)
    host, port = thread.start()
    yield server, host, port, predictor
    thread.stop()


def assert_valid_trace(trace: dict) -> None:
    assert EXPECTED_STAGES.issubset(trace["stages"]), trace
    assert all(s >= 0.0 for s in trace["stages"].values()), trace
    assert trace["total_s"] > 0.0
    # The stages are a decomposition of the total, not more than it.
    assert sum(trace["stages"].values()) <= trace["total_s"] + 1e-6


class TestTraceMeta:
    def test_traced_predict_round_trips_json(self, running):
        _, host, port, _ = running
        with ServingClient.connect(host, port) as client:
            samples, meta = client.predict(MODEL, make_obs(1), trace=True)
        assert samples.shape == (1, 12, 2)
        assert_valid_trace(meta["trace"])
        json.dumps(meta["trace"])  # wire-visible object is pure JSON

    def test_traced_predict_round_trips_binary(self, running):
        """`trace: true` composes with the v2 binary frame encoding."""
        _, host, port, _ = running
        obs = make_obs(2)
        with ServingClient.connect(host, port, binary=True) as client:
            assert client.supports_binary()
            samples, meta = client.predict(MODEL, obs, trace=True)
        assert samples.shape == (1, 12, 2)
        assert_valid_trace(meta["trace"])

    def test_traced_predict_frame(self, running):
        _, host, port, _ = running
        track = make_obs(3)
        with ServingClient.connect(host, port) as client:
            for frame in range(8):
                client.observe(MODEL, frame, {"a": track[frame]})
            agents = client.predict_frame(MODEL, 7, trace=True)
        samples, meta = agents["a"]
        assert samples.shape == (1, 12, 2)
        assert_valid_trace(meta["trace"])

    def test_untraced_request_carries_no_trace(self, running):
        _, host, port, _ = running
        with ServingClient.connect(host, port) as client:
            _, meta = client.predict(MODEL, make_obs(4), return_meta=True)
        assert "trace" not in meta

    @pytest.mark.server_config(instrument=False)
    def test_trace_works_with_instrumentation_off(self, running):
        """Per-request tracing is independent of server-side recording:
        ``instrument=False`` silences the histograms, not the trace."""
        _, host, port, _ = running
        with ServingClient.connect(host, port) as client:
            _, meta = client.predict(MODEL, make_obs(5), trace=True)
            metrics = client.metrics()
        assert_valid_trace(meta["trace"])
        assert metrics["instrument"] is False
        assert metrics["metrics"]["histograms"] == {}


class TestMetricsOp:
    def test_metrics_op_exposes_latency_and_stage_histograms(self, running):
        _, host, port, _ = running
        with ServingClient.connect(host, port) as client:
            for i in range(4):
                client.predict(MODEL, make_obs(10 + i))
            result = client.metrics()
        assert result["instrument"] is True
        assert result["uptime_s"] >= 0
        histograms = result["metrics"]["histograms"]
        latency = histograms[LATENCY_KEY]
        assert latency["count"] == 4
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]
        for stage in EXPECTED_STAGES:
            key = f"serve_stage_seconds{{model={MODEL},stage={stage}}}"
            assert histograms[key]["count"] >= 4, key
        # Encode cost is server-level: responses were encoded, so it counted.
        assert histograms["serve_encode_seconds"]["count"] >= 4

    def test_stats_surface_latency_quantiles(self, running):
        _, host, port, _ = running
        with ServingClient.connect(host, port) as client:
            client.predict(MODEL, make_obs(20))
            stats = client.stats()
        latency = stats["models"][MODEL]["latency"]
        assert latency["count"] == 1
        for key in ("p50_s", "p95_s", "p99_s"):
            assert latency[key] > 0.0

    def test_metrics_is_a_known_operation(self, running):
        assert "metrics" in protocol.OPERATIONS


class TestDraining:
    def test_read_only_ops_answer_while_draining(self, running):
        """``stats``/``metrics``/``health`` keep working once the server is
        closing, while mutating ops are refused — load shedders need the
        telemetry most exactly when the server is going away."""
        server, host, port, _ = running
        with ServingClient.connect(host, port) as client:
            client.predict(MODEL, make_obs(30))
            server._closing = True  # enter drain without tearing down I/O
            health = client.health()
            stats = client.stats()
            metrics = client.metrics()
            with pytest.raises(RemoteServingError) as excinfo:
                client.predict(MODEL, make_obs(31))
        assert health["status"] == "shutting_down"
        assert stats["models"][MODEL]["total_completed"] == 1
        assert metrics["metrics"]["histograms"][LATENCY_KEY]["count"] == 1
        assert excinfo.value.code == protocol.E_SHUTTING_DOWN


class TestErrorAccounting:
    @pytest.mark.server_config(predictor=StubPredictor(fail=True))
    def test_failed_chunks_count_as_errors_not_completions(
        self, running, capsys
    ):
        """A replica whose forward raises must (a) type the client error,
        (b) bump the replica ``errors`` counter, (c) NOT count the handles
        as completed, and (d) emit a structured ``flush_error`` log line."""
        _, host, port, _ = running
        with ServingClient.connect(host, port) as client:
            for i in range(2):
                with pytest.raises(RemoteServingError) as excinfo:
                    client.predict(MODEL, make_obs(40 + i))
                assert excinfo.value.code == protocol.E_INTERNAL
            stats = client.stats()
            metrics = client.metrics()
        model = stats["models"][MODEL]
        replicas = model["replicas"]
        assert sum(r["errors"] for r in replicas) == 2
        assert sum(r["completed"] for r in replicas) == 0
        assert model["total_failed"] == 2
        counters = metrics["metrics"]["counters"]
        assert counters[f"serve_flush_errors{{model={MODEL}}}"] == 2
        # No latency samples: errored handles never resolve successfully.
        # (The stats() read above get-or-creates the instrument, so the key
        # exists — but it must be empty.)
        assert metrics["metrics"]["histograms"][LATENCY_KEY]["count"] == 0

        events = []
        for line in capsys.readouterr().err.splitlines():
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        flush_errors = [e for e in events if e.get("event") == "flush_error"]
        assert len(flush_errors) == 2
        record = flush_errors[0]
        assert record["level"] == "error"
        assert record["model"] == MODEL
        assert "RuntimeError: model melted" in record["error"]

    def test_overload_rejections_are_counted(self, running):
        server, host, port, _ = running
        server.max_in_flight = 0  # every request is now over the cap
        with ServingClient.connect(host, port) as client:
            with pytest.raises(RemoteServingError) as excinfo:
                client.predict(MODEL, make_obs(50))
            server.max_in_flight = 64
            metrics = client.metrics()
        assert excinfo.value.code == protocol.E_OVERLOADED
        assert metrics["metrics"]["counters"]["serve_rejected_overload"] == 1


class TestCompileStatsSurface:
    def test_stats_op_surfaces_plan_cache_and_profile(
        self, trained_vanilla, request_factory
    ):
        """The ``stats`` op exposes each replica's compiled-plan cache, and
        with profiling on, per-kernel call counts from the live server."""
        from repro.serve import Predictor

        predictor = Predictor(trained_vanilla, compile=True)
        predictor.set_profile(True)
        server = AsyncServingServer(max_in_flight=64, workers=2, seed=7)
        server.add_model("vanilla", predictor, num_samples=2)
        with ServerThread(server):
            host, port = server.address
            with ServingClient.connect(host, port) as client:
                for i in range(3):
                    request = request_factory(i, num_neighbours=1)
                    client.predict(
                        "vanilla", request.obs, neighbours=request.neighbours
                    )
                stats = client.stats()
        compile_stats = stats["models"]["vanilla"]["replicas"][0]["compile"]
        assert compile_stats["enabled"] is True
        assert compile_stats["broken"] is None
        assert compile_stats["plans"] >= 1
        assert compile_stats["profile"] is True
        detail = compile_stats["plans_detail"]
        assert detail, "plan cache should hold at least one profiled plan"
        plan_stats = next(iter(detail.values()))
        assert plan_stats["runs"] >= 1
        assert plan_stats["arena"]["bytes"] > 0
        assert plan_stats["profile_enabled"] is True
        kernels = plan_stats["kernels"]
        assert kernels and all(k["calls"] >= 1 for k in kernels.values())
        json.dumps(stats)  # the whole stats payload stays JSON-clean

    def test_replay_invariant_holds_with_tracing_enabled(
        self, trained_vanilla, request_factory
    ):
        """Traced, instrumented serving still replays offline byte-for-byte
        from ``(seed, batch_id)`` — telemetry is additive (the PR-7
        acceptance gate, in-suite)."""
        from repro.serve import Predictor, collate_requests

        predictor = Predictor(trained_vanilla)
        seed, num_samples = 42, 2
        server = AsyncServingServer(
            max_in_flight=64, workers=2, seed=seed, instrument=True
        )
        server.add_model("vanilla", predictor, num_samples=num_samples)
        with ServerThread(server):
            host, port = server.address
            sent = []
            with ServingClient.connect(host, port) as client:
                for i in range(4):
                    request = request_factory(i, num_neighbours=i % 2)
                    samples, meta = client.predict(
                        "vanilla",
                        request.obs,
                        neighbours=request.neighbours,
                        trace=True,
                    )
                    assert_valid_trace(meta["trace"])
                    sent.append((request, samples, meta))
        by_batch: dict[int, list] = {}
        for request, samples, meta in sent:
            by_batch.setdefault(meta["batch_id"], []).append((request, samples, meta))
        for batch_id, rows in by_batch.items():
            rows.sort(key=lambda entry: entry[2]["row"])
            batch = collate_requests(
                [request for request, _, _ in rows], pred_len=predictor.pred_len
            )
            offline = trained_vanilla.predict(
                batch, num_samples, np.random.default_rng((seed, batch_id))
            )
            offline_world = offline + batch.origins[None, :, None, :]
            for row, (_, served, _) in enumerate(rows):
                np.testing.assert_allclose(served, offline_world[:, row], atol=1e-6)


class TestEngineStats:
    def test_engine_stats_mirror_server_shape(self, trained_vanilla):
        from repro.serve import Predictor, ServingEngine

        engine = ServingEngine(
            Predictor(trained_vanilla), num_samples=1, compile=True
        )
        track = np.cumsum(np.random.default_rng(0).normal(size=(8, 2)), axis=0)
        for frame in range(8):
            engine.ingest_frame(frame, {"a": tuple(track[frame])})
        engine.predict_ready(7)
        stats = engine.stats()
        assert stats["total_completed"] == 1
        assert stats["total_requests"] == 1
        assert stats["compile"]["enabled"] is True
        assert stats["compile"]["plans"] >= 1
        engine.shutdown()
