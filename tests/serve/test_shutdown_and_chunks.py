"""Shutdown semantics and externally-driven flush chunks (async front-end).

The PR-4 regression surface: a shut-down batcher/engine must terminate every
pending request with :class:`ServingClosedError` instead of hanging pollers,
shutdown must be idempotent and exception-safe, and the ``take_ready`` /
``run_chunk`` external-flush API must preserve coalescing and the per-flush
RNG replay contract the network gate relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import (
    MicroBatcher,
    Predictor,
    PredictRequest,
    ServingClosedError,
    ServingEngine,
    collate_requests,
)


class FakeClock:
    """Manually-advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class StubPredictor:
    """Deterministic row-wise predictor (velocity extrapolation)."""

    pred_len = 12
    obs_len = 8

    def predict_world(self, batch, num_samples, rng):
        velocity = batch.obs[:, -1] - batch.obs[:, -2]
        steps = np.arange(1, self.pred_len + 1)[None, :, None]
        future = batch.obs[:, -1][:, None, :] + velocity[:, None, :] * steps
        world = future + batch.origins[:, None, :]
        return np.repeat(world[None], num_samples, axis=0)


class TestShutdown:
    def test_pending_requests_get_terminal_error(self, request_factory):
        batcher = MicroBatcher(StubPredictor(), max_batch_size=8, clock=FakeClock())
        handles = [batcher.submit(request_factory(i)) for i in range(3)]
        assert not any(h.done for h in handles)
        assert batcher.shutdown() == 3
        for handle in handles:
            assert handle.done  # a poller loop terminates immediately
            assert isinstance(handle.error, ServingClosedError)
            with pytest.raises(ServingClosedError):
                handle.result()

    def test_shutdown_is_idempotent(self, request_factory):
        batcher = MicroBatcher(StubPredictor(), max_batch_size=8, clock=FakeClock())
        batcher.submit(request_factory(0))
        assert batcher.shutdown() == 1
        assert batcher.shutdown() == 0
        assert batcher.shutdown() == 0
        assert batcher.closed

    def test_submit_after_shutdown_raises(self, request_factory):
        batcher = MicroBatcher(StubPredictor(), max_batch_size=8, clock=FakeClock())
        batcher.shutdown()
        with pytest.raises(ServingClosedError):
            batcher.submit(request_factory(0))

    def test_completed_results_survive_shutdown(self, request_factory):
        """Shutdown fails *pending* work only; delivered results stay valid."""
        batcher = MicroBatcher(StubPredictor(), max_batch_size=2, clock=FakeClock())
        done = [batcher.submit(request_factory(i)) for i in range(2)]  # auto-flush
        late = batcher.submit(request_factory(2))
        batcher.shutdown()
        assert all(h.error is None for h in done)
        assert done[0].result().shape == (1, 12, 2)
        assert isinstance(late.error, ServingClosedError)

    def test_shutdown_after_failed_flush_is_exception_safe(self, request_factory):
        """Requests requeued by a failed flush still get terminal errors."""

        class FailingPredictor(StubPredictor):
            def predict_world(self, batch, num_samples, rng):
                raise RuntimeError("backend down")

        batcher = MicroBatcher(FailingPredictor(), max_batch_size=8, clock=FakeClock())
        handles = [batcher.submit(request_factory(i)) for i in range(2)]
        with pytest.raises(RuntimeError, match="backend down"):
            batcher.flush()
        assert batcher.pending_count == 2  # requeued by the sync path
        assert batcher.shutdown() == 2
        assert all(isinstance(h.error, ServingClosedError) for h in handles)

    def test_engine_shutdown_idempotent_and_rejecting(self, predictor):
        engine = ServingEngine(predictor, num_samples=1, max_batch_size=64, rng=0)
        rng = np.random.default_rng(0)
        for frame in range(predictor.obs_len):
            engine.ingest_frame(
                frame, {a: tuple(rng.normal(size=2)) for a in ("a", "b")}
            )
        handles = engine.submit_ready(predictor.obs_len - 1)
        assert handles
        assert engine.shutdown() == len(handles)
        assert engine.closed
        assert engine.shutdown() == 0
        for handle in handles:
            with pytest.raises(ServingClosedError):
                handle.result()
        # New traffic can still be ingested, but predictions are refused.
        engine.ingest_frame(0, {"c": (0.0, 0.0)})
        for frame in range(1, predictor.obs_len):
            engine.ingest_frame(frame, {"c": (float(frame), 0.0)})
        with pytest.raises(ServingClosedError):
            engine.submit_ready(predictor.obs_len - 1)


class TestExternalFlushChunks:
    def make_batcher(self, clock=None, **kwargs):
        kwargs.setdefault("max_batch_size", 4)
        kwargs.setdefault("max_wait", 0.05)
        return MicroBatcher(
            StubPredictor(), auto_flush=False, clock=clock or FakeClock(), **kwargs
        )

    def test_submit_does_not_auto_flush(self, request_factory):
        batcher = self.make_batcher()
        handles = [batcher.submit(request_factory(i)) for i in range(6)]
        assert not any(h.done for h in handles)
        assert batcher.pending_count == 6

    def test_take_ready_pops_full_chunks_and_due_partial(self, request_factory):
        clock = FakeClock()
        batcher = self.make_batcher(clock=clock)
        for i in range(6):
            batcher.submit(request_factory(i))
        chunks = batcher.take_ready()
        assert [c.size for c in chunks] == [4]  # partial not due yet
        clock.advance(0.06)
        chunks += batcher.take_ready()
        assert [c.size for c in chunks] == [4, 2]
        assert [c.batch_id for c in chunks] == [0, 1]
        assert batcher.pending_count == 0

    def test_allow_partial_false_defers_stragglers(self, request_factory):
        clock = FakeClock()
        batcher = self.make_batcher(clock=clock, max_wait=0.0)
        batcher.submit(request_factory(0))
        # Model busy: the scheduler refuses partial pops, the single waits...
        assert batcher.take_ready(allow_partial=False) == []
        batcher.submit(request_factory(1))
        batcher.submit(request_factory(2))
        # ...and when the model frees up, the backlog coalesces into one batch.
        [chunk] = batcher.take_ready()
        assert chunk.size == 3

    def test_force_pops_everything(self, request_factory):
        batcher = self.make_batcher(max_wait=100.0)
        for i in range(5):
            batcher.submit(request_factory(i))
        chunks = batcher.take_ready(force=True)
        assert [c.size for c in chunks] == [4, 1]

    def test_run_chunk_fulfils_handles(self, request_factory):
        batcher = self.make_batcher()
        handles = [batcher.submit(request_factory(i)) for i in range(4)]
        [chunk] = batcher.take_ready()
        completed = batcher.run_chunk(chunk)
        assert completed == handles
        assert all(h.done and h.error is None for h in handles)
        assert batcher.total_batches == 1
        assert batcher.mean_batch_size == 4.0

    def test_run_chunk_failure_is_terminal(self, request_factory):
        class FlakyPredictor(StubPredictor):
            def predict_world(self, batch, num_samples, rng):
                raise RuntimeError("boom")

        batcher = MicroBatcher(
            FlakyPredictor(), auto_flush=False, max_batch_size=4, clock=FakeClock()
        )
        handles = [batcher.submit(request_factory(i)) for i in range(2)]
        [chunk] = batcher.take_ready(force=True)
        with pytest.raises(RuntimeError, match="boom"):
            batcher.run_chunk(chunk)
        # Externally-driven flushes never requeue: the error is terminal, so
        # the async server can answer the waiting clients instead of retrying
        # a poisoned batch forever.
        assert batcher.pending_count == 0
        for handle in handles:
            assert isinstance(handle.error, RuntimeError)
            with pytest.raises(RuntimeError, match="boom"):
                handle.result()
        assert batcher.total_failed == 2


class TestPerFlushRngReplay:
    def test_batches_replay_from_seed_and_batch_id(self, trained_vanilla, request_factory):
        """The network gate's contract: a served batch is reproducible from
        (seed_per_flush, batch_id) and its request payloads alone."""
        predictor = Predictor(trained_vanilla)
        batcher = MicroBatcher(
            predictor,
            num_samples=2,
            max_batch_size=3,
            auto_flush=False,
            seed_per_flush=123,
        )
        requests = [request_factory(i, num_neighbours=i % 3) for i in range(5)]
        handles = [batcher.submit(r) for r in requests]
        chunks = batcher.take_ready(force=True)
        # Execute out of order — per-flush derivation makes order irrelevant.
        for chunk in reversed(chunks):
            batcher.run_chunk(chunk)
        for chunk in chunks:
            batch = collate_requests(
                [h.request for h in chunk.handles], pred_len=predictor.pred_len
            )
            offline = predictor.predict_world(
                batch, 2, np.random.default_rng((123, chunk.batch_id))
            )
            for row, handle in enumerate(chunk.handles):
                np.testing.assert_allclose(handle.result(), offline[:, row], atol=1e-9)
        assert all(h.done for h in handles)
