"""Registry tests: versioning, spec round trips, dtype policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import TrainConfig
from repro.data.registry import DataConfig, load_multi_domain
from repro.nn import get_default_dtype, set_default_dtype
from repro.serve import ModelRegistry

from tests.serve.conftest import ALL_DOMAINS, TINY_DATA, TINY_TRAIN, TRAIN_DOMAINS


@pytest.fixture
def registry(tmp_path) -> ModelRegistry:
    return ModelRegistry(tmp_path / "models")


class TestVersioning:
    def test_publish_assigns_increasing_versions(self, registry, trained_vanilla):
        assert registry.publish("m", trained_vanilla) == 1
        assert registry.publish("m", trained_vanilla) == 2
        assert registry.versions("m") == [1, 2]
        assert registry.latest_version("m") == 2
        assert registry.models() == ["m"]

    def test_explicit_version_collision_rejected(self, registry, trained_vanilla):
        registry.publish("m", trained_vanilla, version=3)
        with pytest.raises(FileExistsError):
            registry.publish("m", trained_vanilla, version=3)

    def test_unknown_model_raises(self, registry):
        with pytest.raises(KeyError):
            registry.latest_version("nope")
        with pytest.raises(KeyError):
            registry.load("nope")

    def test_invalid_name_rejected(self, registry, trained_vanilla):
        with pytest.raises(ValueError):
            registry.publish("../escape", trained_vanilla)


class TestRoundTrip:
    def test_vanilla_identical_predictions(self, registry, trained_vanilla, small_batch):
        registry.publish("vanilla-pecnet", trained_vanilla)
        predictor = registry.load("vanilla-pecnet")
        offline = trained_vanilla.predict(small_batch, 3, np.random.default_rng(5))
        served = predictor.predict(small_batch, 3, np.random.default_rng(5))
        np.testing.assert_array_equal(served, offline)

    def test_adaptraj_identical_predictions(self, registry, trained_adaptraj, small_batch):
        """The full AdapTraj module tree (extractors, aggregator) round-trips."""
        registry.publish("adaptraj-pecnet", trained_adaptraj)
        predictor = registry.load("adaptraj-pecnet")
        assert predictor.method.name == "adaptraj"
        assert predictor.method.model.num_domains == trained_adaptraj.model.num_domains
        offline = trained_adaptraj.predict(small_batch, 2, np.random.default_rng(5))
        served = predictor.predict(small_batch, 2, np.random.default_rng(5))
        np.testing.assert_array_equal(served, offline)

    def test_counter_extra_state_round_trips(self, registry, small_batch):
        from tests.serve.conftest import train_tiny_method

        counter = train_tiny_method("counter")
        registry.publish("counter-pecnet", counter)
        loaded = registry.load_method("counter-pecnet")
        np.testing.assert_array_equal(loaded.mean_obs, counter.mean_obs)
        assert loaded.mean_momentum == counter.mean_momentum
        offline = counter.predict(small_batch, 2, np.random.default_rng(5))
        served = loaded.predict(small_batch, 2, np.random.default_rng(5))
        np.testing.assert_array_equal(served, offline)

    def test_method_hyperparameters_round_trip(self, registry):
        """Constructor hyperparameters survive publish/load, not reset to
        defaults."""
        from repro.baselines import build_method

        method = build_method(
            "causal_motion",
            "pecnet",
            num_domains=1,
            method_kwargs={"invariance_weight": 2.5},
            rng=0,
        )
        registry.publish("cm", method)
        loaded = registry.load_method("cm")
        assert loaded.invariance_weight == 2.5

    def test_loaded_method_can_keep_training(self, registry, trained_vanilla):
        """A registry checkpoint is a full training restore point, not just
        inference weights."""
        registry.publish("m", trained_vanilla)
        method = registry.load_method("m", train_config=TINY_TRAIN)
        splits = load_multi_domain(TRAIN_DOMAINS, TINY_DATA, domains=ALL_DOMAINS)
        result = method.fit(splits.train)
        assert np.isfinite(result.final_loss)


class TestDtypePolicies:
    def test_float64_checkpoint_into_float32_stack(
        self, registry, trained_vanilla, small_batch
    ):
        """The serving stack's dtype wins under the default policy."""
        registry.publish("m", trained_vanilla)
        previous = get_default_dtype()
        set_default_dtype(np.float32)
        try:
            predictor = registry.load("m")  # dtype_policy="module"
            dtypes = {p.data.dtype for p in predictor.method.module().parameters()}
            assert dtypes == {np.dtype(np.float32)}
            served = predictor.predict(small_batch, 1, np.random.default_rng(0))
            offline = trained_vanilla.predict(small_batch, 1, np.random.default_rng(0))
            assert np.abs(served - offline).max() < 1e-3  # float32 round-off only
        finally:
            set_default_dtype(previous)

    def test_checkpoint_policy_follows_saved_dtype(self, registry, trained_vanilla):
        registry.publish("m", trained_vanilla)
        previous = get_default_dtype()
        set_default_dtype(np.float32)
        try:
            predictor = registry.load("m", dtype_policy="checkpoint")
            dtypes = {p.data.dtype for p in predictor.method.module().parameters()}
            assert dtypes == {np.dtype(np.float64)}
        finally:
            set_default_dtype(previous)

    def test_strict_policy_raises_on_mismatch(self, registry, trained_vanilla):
        registry.publish("m", trained_vanilla)
        previous = get_default_dtype()
        set_default_dtype(np.float32)
        try:
            with pytest.raises(ValueError, match="dtype"):
                registry.load("m", dtype_policy="strict")
        finally:
            set_default_dtype(previous)
