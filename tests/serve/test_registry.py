"""Registry tests: versioning, spec round trips, dtype policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import TrainConfig
from repro.data.registry import DataConfig, load_multi_domain
from repro.nn import get_default_dtype, set_default_dtype
from repro.serve import ModelRegistry

from tests.serve.conftest import ALL_DOMAINS, TINY_DATA, TINY_TRAIN, TRAIN_DOMAINS


@pytest.fixture
def registry(tmp_path) -> ModelRegistry:
    return ModelRegistry(tmp_path / "models")


class TestVersioning:
    def test_publish_assigns_increasing_versions(self, registry, trained_vanilla):
        assert registry.publish("m", trained_vanilla) == 1
        assert registry.publish("m", trained_vanilla) == 2
        assert registry.versions("m") == [1, 2]
        assert registry.latest_version("m") == 2
        assert registry.models() == ["m"]

    def test_explicit_version_collision_rejected(self, registry, trained_vanilla):
        registry.publish("m", trained_vanilla, version=3)
        with pytest.raises(FileExistsError):
            registry.publish("m", trained_vanilla, version=3)

    def test_unknown_model_raises(self, registry):
        with pytest.raises(KeyError):
            registry.latest_version("nope")
        with pytest.raises(KeyError):
            registry.load("nope")

    def test_invalid_name_rejected(self, registry, trained_vanilla):
        with pytest.raises(ValueError):
            registry.publish("../escape", trained_vanilla)


class TestRoundTrip:
    def test_vanilla_identical_predictions(self, registry, trained_vanilla, small_batch):
        registry.publish("vanilla-pecnet", trained_vanilla)
        predictor = registry.load("vanilla-pecnet")
        offline = trained_vanilla.predict(small_batch, 3, np.random.default_rng(5))
        served = predictor.predict(small_batch, 3, np.random.default_rng(5))
        np.testing.assert_array_equal(served, offline)

    def test_adaptraj_identical_predictions(self, registry, trained_adaptraj, small_batch):
        """The full AdapTraj module tree (extractors, aggregator) round-trips."""
        registry.publish("adaptraj-pecnet", trained_adaptraj)
        predictor = registry.load("adaptraj-pecnet")
        assert predictor.method.name == "adaptraj"
        assert predictor.method.model.num_domains == trained_adaptraj.model.num_domains
        offline = trained_adaptraj.predict(small_batch, 2, np.random.default_rng(5))
        served = predictor.predict(small_batch, 2, np.random.default_rng(5))
        np.testing.assert_array_equal(served, offline)

    def test_counter_extra_state_round_trips(self, registry, small_batch):
        from tests.serve.conftest import train_tiny_method

        counter = train_tiny_method("counter")
        registry.publish("counter-pecnet", counter)
        loaded = registry.load_method("counter-pecnet")
        np.testing.assert_array_equal(loaded.mean_obs, counter.mean_obs)
        assert loaded.mean_momentum == counter.mean_momentum
        offline = counter.predict(small_batch, 2, np.random.default_rng(5))
        served = loaded.predict(small_batch, 2, np.random.default_rng(5))
        np.testing.assert_array_equal(served, offline)

    def test_method_hyperparameters_round_trip(self, registry):
        """Constructor hyperparameters survive publish/load, not reset to
        defaults."""
        from repro.baselines import build_method

        method = build_method(
            "causal_motion",
            "pecnet",
            num_domains=1,
            method_kwargs={"invariance_weight": 2.5},
            rng=0,
        )
        registry.publish("cm", method)
        loaded = registry.load_method("cm")
        assert loaded.invariance_weight == 2.5

    def test_loaded_method_can_keep_training(self, registry, trained_vanilla):
        """A registry checkpoint is a full training restore point, not just
        inference weights."""
        registry.publish("m", trained_vanilla)
        method = registry.load_method("m", train_config=TINY_TRAIN)
        splits = load_multi_domain(TRAIN_DOMAINS, TINY_DATA, domains=ALL_DOMAINS)
        result = method.fit(splits.train)
        assert np.isfinite(result.final_loss)


class TestDtypePolicies:
    def test_float64_checkpoint_into_float32_stack(
        self, registry, trained_vanilla, small_batch
    ):
        """The serving stack's dtype wins under the default policy."""
        registry.publish("m", trained_vanilla)
        previous = get_default_dtype()
        set_default_dtype(np.float32)
        try:
            predictor = registry.load("m")  # dtype_policy="module"
            dtypes = {p.data.dtype for p in predictor.method.module().parameters()}
            assert dtypes == {np.dtype(np.float32)}
            served = predictor.predict(small_batch, 1, np.random.default_rng(0))
            offline = trained_vanilla.predict(small_batch, 1, np.random.default_rng(0))
            assert np.abs(served - offline).max() < 1e-3  # float32 round-off only
        finally:
            set_default_dtype(previous)

    def test_checkpoint_policy_follows_saved_dtype(self, registry, trained_vanilla):
        registry.publish("m", trained_vanilla)
        previous = get_default_dtype()
        set_default_dtype(np.float32)
        try:
            predictor = registry.load("m", dtype_policy="checkpoint")
            dtypes = {p.data.dtype for p in predictor.method.module().parameters()}
            assert dtypes == {np.dtype(np.float64)}
        finally:
            set_default_dtype(previous)

    def test_strict_policy_raises_on_mismatch(self, registry, trained_vanilla):
        registry.publish("m", trained_vanilla)
        previous = get_default_dtype()
        set_default_dtype(np.float32)
        try:
            with pytest.raises(ValueError, match="dtype"):
                registry.load("m", dtype_policy="strict")
        finally:
            set_default_dtype(previous)


class TestRegistryRobustness:
    def test_models_skips_stray_directories(self, registry, trained_vanilla):
        """Regression: a junk directory in the root (``.tmp``, a name with a
        space) used to blow up ``models()`` with ValueError via the
        ``versions() -> _model_dir()`` name validation."""
        import os

        registry.publish("m", trained_vanilla)
        os.makedirs(os.path.join(registry.root, ".tmp"))
        os.makedirs(os.path.join(registry.root, "foo bar"))
        os.makedirs(os.path.join(registry.root, "-leading-dash"))
        with open(os.path.join(registry.root, "stray-file"), "w") as fh:
            fh.write("not a model")
        assert registry.models() == ["m"]
        # The valid entry is untouched by its junk neighbours.
        assert registry.versions("m") == [1]
        assert registry.latest_version("m") == 1

    def test_models_skips_conforming_but_empty_directories(self, registry):
        import os

        os.makedirs(os.path.join(registry.root, "empty-model"))
        assert registry.models() == []

    def test_crashed_publish_never_becomes_latest(
        self, registry, trained_vanilla, monkeypatch
    ):
        """Regression: ``publish`` wrote the checkpoint in place, so a crash
        mid-save left a truncated ``v<N>.npz`` that ``latest_version()``
        then served.  The temp-file + ``os.replace`` write must leave no
        trace of the failed version."""
        import os

        import repro.serve.registry as registry_module

        registry.publish("m", trained_vanilla)  # healthy v1

        def partial_write(path, state, config=None):
            with open(path, "wb") as fh:
                fh.write(b"PK\x03\x04 truncated mid-write")
            raise OSError("disk full")

        monkeypatch.setattr(registry_module, "save_checkpoint", partial_write)
        with pytest.raises(OSError, match="disk full"):
            registry.publish("m", trained_vanilla)
        monkeypatch.undo()
        # The failed v2 must not exist in any form: not as the latest
        # version, not as a stray partial file.
        assert registry.versions("m") == [1]
        assert registry.latest_version("m") == 1
        assert os.listdir(os.path.join(registry.root, "m")) == ["v1.npz"]
        registry.load("m")  # the surviving version is intact and loadable

    def test_interrupted_publish_of_first_version_leaves_nothing(
        self, registry, trained_vanilla, monkeypatch
    ):
        import os

        import repro.serve.registry as registry_module

        def crash(path, state, config=None):
            raise KeyboardInterrupt  # even a hard interrupt cleans up

        monkeypatch.setattr(registry_module, "save_checkpoint", crash)
        with pytest.raises(KeyboardInterrupt):
            registry.publish("m", trained_vanilla)
        monkeypatch.undo()
        assert registry.versions("m") == []
        with pytest.raises(KeyError):
            registry.latest_version("m")
        assert os.listdir(os.path.join(registry.root, "m")) == []


# ----------------------------------------------------------------------
# Concurrent multi-process publish/load (the os.replace atomicity contract)
# ----------------------------------------------------------------------
# Helpers must live at module level: ProcessPoolExecutor pickles them by
# qualified name.  Each child builds its own registry handle and method —
# the *directory* is the only shared state, exactly as in production where
# trainer and serving hosts race on one registry root.
def _race_publish(root: str, name: str, versions: list[int], seed: int) -> list[int]:
    from repro.baselines import build_method
    from repro.serve.registry import ModelRegistry

    registry = ModelRegistry(root)
    method = build_method("vanilla", "pecnet", num_domains=1, rng=seed)
    published = []
    for version in versions:
        try:
            published.append(registry.publish(name, method, version=version))
        except FileExistsError:
            # Two publishers may race the same explicit version; exactly the
            # loser sees this.  Either way the file on disk stays complete.
            pass
    return published


def _race_load(root: str, name: str, duration_s: float) -> int:
    import time

    from repro.serve.registry import ModelRegistry

    registry = ModelRegistry(root)
    loads = 0
    deadline = time.monotonic() + duration_s
    while time.monotonic() < deadline:
        try:
            version = registry.latest_version(name)
        except KeyError:
            continue  # nothing published yet
        # The atomicity contract under test: any version `latest_version`
        # can observe is a *complete* checkpoint — `load` must never see a
        # partial file, whatever the publishers are doing right now.
        predictor = registry.load(name, version=version)
        assert predictor.obs_len == 8 and predictor.pred_len == 12
        loads += 1
    return loads


class TestConcurrentPublishLoad:
    def test_multiprocess_publish_load_never_sees_partial_checkpoints(self, tmp_path):
        from concurrent.futures import ProcessPoolExecutor

        root = str(tmp_path / "models")
        name = "race"
        odds = list(range(1, 17, 2))
        evens = list(range(2, 17, 2))
        with ProcessPoolExecutor(max_workers=4) as pool:
            publishers = [
                pool.submit(_race_publish, root, name, odds + [99], seed=0),
                pool.submit(_race_publish, root, name, evens + [99], seed=1),
            ]
            loaders = [pool.submit(_race_load, root, name, 2.0) for _ in range(2)]
            published = [f.result(timeout=120) for f in publishers]
            loads = [f.result(timeout=120) for f in loaders]

        registry = ModelRegistry(root)
        # Every disjoint version landed; the contended one landed exactly once.
        assert set(registry.versions(name)) == set(odds) | set(evens) | {99}
        assert sum(v == 99 for fs in published for v in fs) >= 1
        assert registry.latest_version(name) == 99
        # Loaders ran concurrently with the publishers and every single load
        # completed (no partial-file crash — assertions inside the child).
        assert sum(loads) > 0
        registry.load(name, version=99)
