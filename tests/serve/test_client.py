"""Client-side correctness: retry/backoff policy and transport poisoning.

The poisoning tests drive a hand-rolled raw-socket server so the timing of
the failure is fully controlled: a response delayed past the client's socket
timeout is the classic desynchronization trigger — the late frame is still
in flight when the next request goes out, and without poisoning every
subsequent exchange would be off by one.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.serve import ProtocolError, RemoteServingError, RetryPolicy, ServingClient
from repro.serve import protocol


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0)
        rng = np.random.default_rng(0)
        delays = [policy.delay(attempt, rng) for attempt in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5, seed=3)
        one = [policy.delay(i, np.random.default_rng(policy.seed)) for i in range(4)]
        two = [policy.delay(i, np.random.default_rng(policy.seed)) for i in range(4)]
        assert one == two  # same seed, same schedule
        assert all(0.5 <= delay <= 1.0 for delay in one)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retries": -1},
            {"base_delay": -0.1},
            {"multiplier": 0.5},
            {"jitter": 1.5},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


def make_stub_client(retry=None):
    """A client over one end of a socketpair; calls are monkeypatched."""
    a, b = socket.socketpair()
    b.close()
    client = ServingClient(a, retry=retry, sleep=lambda _: None)
    return client


class TestRetryLoop:
    """`call()` retry semantics, isolated from the network via _call_once."""

    def drive(self, client, outcomes):
        """Patch _call_once to pop scripted outcomes; returns sleep log."""
        sleeps: list[float] = []
        client._sleep = sleeps.append

        def scripted(op, fields):
            outcome = outcomes.pop(0)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        client._call_once = scripted
        return sleeps

    def test_overloaded_is_retried_with_backoff(self):
        policy = RetryPolicy(retries=3, base_delay=0.01, jitter=0.0)
        client = make_stub_client(retry=policy)
        sleeps = self.drive(
            client,
            [
                RemoteServingError(protocol.E_OVERLOADED, "busy"),
                RemoteServingError(protocol.E_OVERLOADED, "busy"),
                {"fine": True},
            ],
        )
        assert client.call("predict") == {"fine": True}
        assert sleeps == [0.01, 0.02]  # exponential, deterministic (jitter 0)

    def test_bad_request_is_never_retried(self):
        client = make_stub_client(retry=RetryPolicy(retries=5))
        sleeps = self.drive(
            client, [RemoteServingError(protocol.E_BAD_REQUEST, "malformed")]
        )
        with pytest.raises(RemoteServingError) as excinfo:
            client.call("predict")
        assert excinfo.value.code == protocol.E_BAD_REQUEST
        assert sleeps == []

    def test_retries_exhaust(self):
        client = make_stub_client(retry=RetryPolicy(retries=2, base_delay=0.0))
        sleeps = self.drive(
            client,
            [RemoteServingError(protocol.E_OVERLOADED, "busy") for _ in range(3)],
        )
        with pytest.raises(RemoteServingError):
            client.call("predict")
        assert len(sleeps) == 2

    def test_no_policy_means_no_retry(self):
        client = make_stub_client(retry=None)
        self.drive(client, [RemoteServingError(protocol.E_OVERLOADED, "busy")])
        with pytest.raises(RemoteServingError):
            client.call("predict")


class _RawServer:
    """Minimal threaded frame server whose response timing is scripted.

    ``delay_first`` stalls the response to the first request of the first
    connection past the client's socket timeout; every other request (and
    every later connection) is answered immediately, echoing the request id.
    """

    def __init__(self, delay_first: float = 0.0, v1_only: bool = False) -> None:
        self.delay_first = delay_first
        self.v1_only = v1_only
        self.sock = socket.create_server(("127.0.0.1", 0))
        self.address = self.sock.getsockname()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _respond(self, message: dict) -> dict:
        if self.v1_only and message.get("v") != 1:
            return protocol.error_response(
                message.get("id"),
                protocol.E_UNSUPPORTED_VERSION,
                f"protocol version {message.get('v')!r} not supported (server speaks 1)",
            )
        result = {"echo": message["id"]}
        if message.get("op") == "health":
            result["status"] = "ok"
            result["protocol"] = 1 if self.v1_only else 2
            if not self.v1_only:
                result["binary"] = True
        return protocol.ok_response(message["id"], result)

    def _serve_connection(self, conn: socket.socket, delay: float) -> None:
        with conn:
            first = True
            while True:
                try:
                    message = protocol.read_frame_sync(conn)
                except (ProtocolError, OSError):
                    return
                if message is None:
                    return
                if first and delay:
                    time.sleep(delay)
                first = False
                try:
                    protocol.write_frame_sync(conn, self._respond(message))
                except OSError:
                    return

    def _run(self) -> None:
        delay = self.delay_first
        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            # One thread per connection: a stalled first connection must not
            # block a reconnecting client's fresh one.
            threading.Thread(
                target=self._serve_connection, args=(conn, delay), daemon=True
            ).start()
            delay = 0.0  # only the very first connection's first exchange is slow

    def close(self) -> None:
        self.sock.close()


class TestPoisoning:
    def test_timeout_poisons_and_reconnect_recovers(self):
        """Regression: a timed-out call must not leave the stale response
        frame to be read by the next call (the off-by-one desync bug)."""
        server = _RawServer(delay_first=0.6)
        host, port = server.address
        try:
            client = ServingClient.connect(host, port, timeout=0.15)
            with client:
                with pytest.raises(TimeoutError):
                    client.call("health")
                assert client.poisoned
                # The delayed frame is (or soon will be) sitting in the
                # socket buffer.  A poisoned client must refuse to touch the
                # stream rather than read it as the answer to a new request.
                time.sleep(0.6)
                with pytest.raises(ProtocolError, match="poisoned"):
                    client.call("health")
                client.reconnect()
                assert not client.poisoned
                result = client.call("health")
                # Fresh connection, clean pairing: the echoed id is the one
                # this request carried, not the stale frame's.
                assert result["echo"] == client._next_id
        finally:
            server.close()

    def test_server_disconnect_poisons(self):
        server = _RawServer()
        host, port = server.address
        try:
            client = ServingClient.connect(host, port, timeout=1.0)
            with client:
                client.call("health")
                server.close()  # no new connections
                # Kill the live connection from the server side.
                client._sock.shutdown(socket.SHUT_RDWR)
                with pytest.raises((ProtocolError, OSError)):
                    client.call("health")
                assert client.poisoned
        finally:
            server.close()

    def test_retry_policy_auto_reconnects_after_poison(self):
        server = _RawServer(delay_first=0.5)
        host, port = server.address
        try:
            client = ServingClient.connect(
                host,
                port,
                timeout=0.15,
                retry=RetryPolicy(retries=2, base_delay=0.0, jitter=0.0),
            )
            with client:
                # First attempt times out and poisons; the policy reconnects
                # and the retry lands on a fresh, fast connection.
                result = client.call("health")
                assert result["echo"] == client._next_id
                assert not client.poisoned
        finally:
            server.close()

    def test_raw_socket_client_cannot_reconnect(self):
        a, b = socket.socketpair()
        with a, b:
            client = ServingClient(a)
            with pytest.raises(ProtocolError, match="no.*address"):
                client.reconnect()


class TestRetryScope:
    """What a RetryPolicy must NOT transparently retry."""

    def test_stateful_ops_are_not_reconnect_retried(self):
        """An observe that dies mid-call must raise even with a RetryPolicy:
        a silent reconnect would reset this connection's streaming windows
        and frame-mode predicts would quietly return nothing."""
        server = _RawServer(delay_first=0.5)
        host, port = server.address
        try:
            client = ServingClient.connect(
                host,
                port,
                timeout=0.15,
                retry=RetryPolicy(retries=3, base_delay=0.0, jitter=0.0),
            )
            with client:
                with pytest.raises(TimeoutError):
                    client.observe("m", 0, {"a": (0.0, 0.0)})
                assert client.poisoned
                # A stateless call afterwards may reconnect transparently.
                result = client.call("health")
                assert result["echo"] == client._next_id
                assert not client.poisoned
        finally:
            server.close()

    def test_oversized_request_is_not_retried(self, monkeypatch):
        """An encode-side ProtocolError (frame over the cap) is raised
        before any byte goes out: deterministic, connection still healthy —
        no poisoning, no reconnect loop, no backoff."""
        server = _RawServer()
        host, port = server.address
        try:
            sleeps: list[float] = []
            client = ServingClient.connect(
                host, port, binary=True,
                retry=RetryPolicy(retries=4, base_delay=0.01),
            )
            client._sleep = sleeps.append
            with client:
                monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 128)
                with pytest.raises(ProtocolError, match="exceeds"):
                    client.predict("m", np.zeros((64, 2)))
                assert sleeps == []  # never backed off
                assert not client.poisoned  # stream untouched
                monkeypatch.undo()
                assert client.call("health")["status"] == "ok"  # still usable
        finally:
            server.close()


class TestVersionDowngrade:
    """New client against a v1-only server: negotiate down, don't explode."""

    def test_supports_binary_is_false_not_an_error(self):
        server = _RawServer(v1_only=True)
        host, port = server.address
        try:
            with ServingClient.connect(host, port) as client:
                # Default (v2) calls are rejected by the old server...
                with pytest.raises(RemoteServingError) as excinfo:
                    client.call("stats")
                assert excinfo.value.code == protocol.E_UNSUPPORTED_VERSION
                # ...but the negotiation probe itself must not explode.
                assert client.supports_binary() is False
                assert client.version == protocol.PROTOCOL_VERSION  # restored
        finally:
            server.close()

    def test_v1_client_mode_completes_calls(self):
        server = _RawServer(v1_only=True)
        host, port = server.address
        try:
            with ServingClient.connect(host, port, version=1) as client:
                assert client.call("health")["status"] == "ok"
                assert client.call("stats")["echo"] == client._next_id
        finally:
            server.close()

    def test_unsupported_version_rejected_client_side(self):
        a, b = socket.socketpair()
        with a, b:
            with pytest.raises(ValueError, match="version"):
                ServingClient(a, version=99)
