"""Shared fixtures for the serving tests: a small trained method + predictor."""

from __future__ import annotations

import os
import signal
import threading

import numpy as np
import pytest

from repro.baselines import build_method
from repro.core.config import TrainConfig
from repro.data.registry import DataConfig, load_multi_domain
from repro.serve import Predictor


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "server_config(predictor=..., model=..., **server_kwargs): "
        "configuration for the `running` AsyncServingServer fixture",
    )


#: Per-test wall-clock ceiling for the serve/chaos suites (seconds).  These
#: tests drive sockets, worker processes, and deliberate stalls — a bug that
#: hangs one of them must fail the test, never wedge the whole pipeline.
SERVE_TEST_TIMEOUT = float(os.environ.get("REPRO_SERVE_TEST_TIMEOUT", "120"))


@pytest.fixture(autouse=True)
def _serve_test_timeout(request):
    """Harness-level per-test timeout guard (SIGALRM).

    Skips itself when the platform has no SIGALRM, when not on the main
    thread, or when the ``pytest-timeout`` plugin is active (CI installs it;
    two owners of the same alarm would cancel each other's timers).
    """
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
        or request.config.pluginmanager.hasplugin("timeout")
    ):
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"serve test exceeded {SERVE_TEST_TIMEOUT:.0f}s "
            "(REPRO_SERVE_TEST_TIMEOUT) — likely a hung socket/worker"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, SERVE_TEST_TIMEOUT)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


TRAIN_DOMAINS = ["syi", "eth_ucy"]
ALL_DOMAINS = ["syi", "eth_ucy", "sdd"]

TINY_DATA = DataConfig(num_scenes=1, frames_per_scene=60, stride=4)
TINY_TRAIN = TrainConfig(epochs=1, batch_size=16, max_batches_per_epoch=2)


def train_tiny_method(method: str = "vanilla", backbone: str = "pecnet", seed: int = 0):
    """One-epoch training run: enough for weights to be non-initial."""
    splits = load_multi_domain(TRAIN_DOMAINS, TINY_DATA, domains=ALL_DOMAINS)
    learner = build_method(
        method,
        backbone,
        num_domains=len(TRAIN_DOMAINS),
        train_config=TINY_TRAIN,
        rng=seed,
    )
    learner.fit(splits.train)
    return learner


@pytest.fixture(scope="module")
def trained_vanilla():
    return train_tiny_method("vanilla")


@pytest.fixture(scope="module")
def trained_adaptraj():
    return train_tiny_method("adaptraj")


@pytest.fixture
def predictor(trained_vanilla) -> Predictor:
    return Predictor(trained_vanilla)


@pytest.fixture
def small_batch(trained_vanilla):
    from repro.data.registry import load_domain_dataset

    target = load_domain_dataset("sdd", TINY_DATA, domains=ALL_DOMAINS)
    return next(target.test.batches(6, shuffle=False))


@pytest.fixture
def request_factory(rng):
    """Build synthetic world-frame PredictRequests with a given neighbour count."""

    from repro.serve import PredictRequest

    def make(request_id, num_neighbours=2, obs_len=8, offset=0.0):
        obs = np.cumsum(rng.normal(size=(obs_len, 2)), axis=0) + offset
        neighbours = (
            np.cumsum(rng.normal(size=(num_neighbours, obs_len, 2)), axis=1) + offset
        )
        return PredictRequest(request_id=request_id, obs=obs, neighbours=neighbours)

    return make
