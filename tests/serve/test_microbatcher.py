"""Micro-batcher tests: collation fidelity, coalescing policies, equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import TrajectoryDataset, TrajectorySample
from repro.serve import MicroBatcher, PredictRequest, Predictor, collate_requests


class FakeClock:
    """Manually-advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class StubPredictor:
    """Deterministic row-wise predictor: future = last obs velocity extrapolated.

    Row independence means coalesced and per-request outputs must agree
    exactly; calls are recorded so tests can assert the batching layout.
    """

    pred_len = 12
    obs_len = 8

    def __init__(self) -> None:
        self.batch_sizes: list[int] = []

    def predict_world(self, batch, num_samples, rng):
        self.batch_sizes.append(batch.size)
        velocity = batch.obs[:, -1] - batch.obs[:, -2]  # [B, 2]
        steps = np.arange(1, self.pred_len + 1)[None, :, None]
        future = batch.obs[:, -1][:, None, :] + velocity[:, None, :] * steps
        world = future + batch.origins[:, None, :]
        return np.repeat(world[None], num_samples, axis=0)


class TestPredictRequest:
    def test_validates_shapes(self):
        with pytest.raises(ValueError, match="obs"):
            PredictRequest(request_id=0, obs=np.zeros((8,)))
        with pytest.raises(ValueError, match="neighbours"):
            PredictRequest(
                request_id=0, obs=np.zeros((8, 2)), neighbours=np.zeros((1, 4, 2))
            )

    def test_no_neighbours_default(self):
        request = PredictRequest(request_id=0, obs=np.zeros((8, 2)))
        assert request.neighbours.shape == (0, 8, 2)


class TestCollateRequests:
    def test_matches_dataset_collate(self, rng):
        """Serving collation is bit-identical to the offline dataset path."""
        samples, requests = [], []
        for i, n in enumerate([0, 2, 5]):
            obs = np.cumsum(rng.normal(size=(8, 2)), axis=0) + 10.0 * i
            future = np.cumsum(rng.normal(size=(12, 2)), axis=0)
            neighbours = np.cumsum(rng.normal(size=(n, 8, 2)), axis=1)
            samples.append(
                TrajectorySample(obs=obs, future=future, neighbours=neighbours, domain="d")
            )
            requests.append(
                PredictRequest(request_id=i, obs=obs, neighbours=neighbours)
            )
        offline = TrajectoryDataset(samples, domains=["d"]).collate(range(3))
        served = collate_requests(requests, pred_len=12)
        np.testing.assert_array_equal(served.obs, offline.obs)
        np.testing.assert_array_equal(served.neighbours, offline.neighbours)
        np.testing.assert_array_equal(served.neighbour_mask, offline.neighbour_mask)
        np.testing.assert_array_equal(served.origins, offline.origins)
        np.testing.assert_array_equal(served.domain_ids, offline.domain_ids)

    def test_nearest_neighbour_capping_matches_offline(self, rng):
        obs = np.cumsum(rng.normal(size=(8, 2)), axis=0)
        neighbours = np.cumsum(rng.normal(size=(6, 8, 2)), axis=1)
        sample = TrajectorySample(
            obs=obs, future=np.zeros((12, 2)), neighbours=neighbours, domain="d"
        )
        offline = TrajectoryDataset([sample], domains=["d"]).collate([0], max_neighbours=3)
        served = collate_requests(
            [PredictRequest(request_id=0, obs=obs, neighbours=neighbours)],
            pred_len=12,
            max_neighbours=3,
        )
        np.testing.assert_array_equal(served.neighbours, offline.neighbours)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            collate_requests([])

    def test_mixed_window_lengths_rejected(self):
        with pytest.raises(ValueError, match="window lengths"):
            collate_requests(
                [
                    PredictRequest(request_id=0, obs=np.zeros((8, 2))),
                    PredictRequest(request_id=1, obs=np.zeros((6, 2))),
                ]
            )


class TestBatchingPolicies:
    def test_max_batch_size_triggers_flush(self, request_factory):
        stub = StubPredictor()
        batcher = MicroBatcher(stub, max_batch_size=4, max_wait=100.0, clock=FakeClock())
        handles = [batcher.submit(request_factory(i)) for i in range(7)]
        # Requests 0-3 coalesced at the fourth submit; 4-6 still waiting.
        assert stub.batch_sizes == [4]
        assert [h.done for h in handles] == [True] * 4 + [False] * 3
        assert batcher.pending_count == 3

    def test_max_wait_flushes_partial_batch(self, request_factory):
        stub = StubPredictor()
        clock = FakeClock()
        batcher = MicroBatcher(stub, max_batch_size=32, max_wait=0.05, clock=clock)
        handle = batcher.submit(request_factory(0))
        assert batcher.poll() == []  # oldest has not waited long enough
        assert not handle.done
        clock.advance(0.051)
        completed = batcher.poll()
        assert [h.request.request_id for h in completed] == [0]
        assert handle.done
        assert stub.batch_sizes == [1]

    def test_flush_drains_in_chunks(self, request_factory):
        stub = StubPredictor()
        batcher = MicroBatcher(stub, max_batch_size=4, max_wait=100.0, clock=FakeClock())
        for i in range(10):
            batcher.submit(request_factory(i))
        batcher.flush()
        assert batcher.pending_count == 0
        # 10 requests: two full batches on submit, then 4+2 on flush? No —
        # submits flush at 4 and 8, leaving 2 for the final flush.
        assert stub.batch_sizes == [4, 4, 2]
        assert batcher.total_requests == 10
        assert batcher.total_batches == 3

    def test_result_before_flush_raises(self, request_factory):
        batcher = MicroBatcher(
            StubPredictor(), max_batch_size=8, max_wait=100.0, clock=FakeClock()
        )
        handle = batcher.submit(request_factory(0))
        with pytest.raises(RuntimeError, match="not ready"):
            handle.result()

    def test_wrong_window_length_rejected_at_submit(self, request_factory):
        """A malformed request fails in its own caller instead of poisoning
        the batch it would later be coalesced with."""
        batcher = MicroBatcher(StubPredictor(), max_batch_size=4, clock=FakeClock())
        good = [batcher.submit(request_factory(i)) for i in range(3)]
        with pytest.raises(ValueError, match="window length"):
            batcher.submit(request_factory(99, obs_len=7))
        batcher.flush()
        assert all(h.done for h in good)

    def test_failed_flush_requeues_chunk(self, request_factory):
        """A predictor error must not drop the coalesced requests."""

        class FlakyPredictor(StubPredictor):
            def __init__(self):
                super().__init__()
                self.fail_next = True

            def predict_world(self, batch, num_samples, rng):
                if self.fail_next:
                    self.fail_next = False
                    raise RuntimeError("transient backend failure")
                return super().predict_world(batch, num_samples, rng)

        batcher = MicroBatcher(FlakyPredictor(), max_batch_size=8, clock=FakeClock())
        handles = [batcher.submit(request_factory(i)) for i in range(3)]
        with pytest.raises(RuntimeError, match="transient"):
            batcher.flush()
        assert batcher.pending_count == 3  # requeued, not lost
        batcher.flush()  # backend recovered
        assert all(h.done for h in handles)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(StubPredictor(), max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(StubPredictor(), max_wait=-1.0)
        with pytest.raises(ValueError):
            MicroBatcher(StubPredictor(), num_samples=0)


class TestCoalescingEquivalence:
    def test_stub_coalesced_equals_per_request(self, request_factory):
        requests = [request_factory(i, num_neighbours=i % 4) for i in range(6)]
        coalesced = MicroBatcher(StubPredictor(), max_batch_size=6)
        batched = [coalesced.submit(r) for r in requests]
        sequential = MicroBatcher(StubPredictor(), max_batch_size=1)
        singles = [sequential.submit(r) for r in requests]
        for a, b in zip(batched, singles):
            np.testing.assert_allclose(a.result(), b.result(), atol=1e-12)

    def test_real_model_coalesced_equals_per_request(self, trained_vanilla, request_factory):
        """With one shared noise stream, padded coalescing through PECNet is
        numerically identical to running each request alone (row-independent
        model math; the noise stream assigns the same draws either way)."""
        requests = [request_factory(i, num_neighbours=i % 3) for i in range(5)]
        coalesced = MicroBatcher(Predictor(trained_vanilla), max_batch_size=5, rng=7)
        batched = [coalesced.submit(r) for r in requests]
        sequential = MicroBatcher(Predictor(trained_vanilla), max_batch_size=1, rng=7)
        singles = [sequential.submit(r) for r in requests]
        for a, b in zip(batched, singles):
            np.testing.assert_allclose(a.result(), b.result(), atol=1e-9)
