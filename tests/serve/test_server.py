"""Async serving front-end tests: round trips, isolation, backpressure.

Everything runs against a real ``AsyncServingServer`` on a loopback socket
(event loop hosted by ``ServerThread``), driven by the blocking
``ServingClient`` — the same topology as the benchmark gate and the demo.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serve import (
    AsyncServingServer,
    RemoteServingError,
    ServerThread,
    ServingClient,
)
from repro.serve import protocol


class StubPredictor:
    """Deterministic row-wise predictor (velocity extrapolation)."""

    pred_len = 12
    obs_len = 8

    def __init__(self, delay: float = 0.0) -> None:
        self.delay = delay
        self.batch_sizes: list[int] = []

    def predict_world(self, batch, num_samples, rng):
        if self.delay:
            time.sleep(self.delay)
        self.batch_sizes.append(batch.size)
        velocity = batch.obs[:, -1] - batch.obs[:, -2]
        steps = np.arange(1, self.pred_len + 1)[None, :, None]
        future = batch.obs[:, -1][:, None, :] + velocity[:, None, :] * steps
        world = future + batch.origins[:, None, :]
        return np.repeat(world[None], num_samples, axis=0)


def expected_extrapolation(obs: np.ndarray, pred_len: int = 12) -> np.ndarray:
    velocity = obs[-1] - obs[-2]
    steps = np.arange(1, pred_len + 1)[:, None]
    return obs[-1][None, :] + velocity[None, :] * steps


def make_obs(seed: int = 0, obs_len: int = 8) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.normal(size=(obs_len, 2)), axis=0)


@pytest.fixture
def running(request):
    """Start a server around the given (predictor-config) marker, yield
    (server, host, port, predictor)."""
    marker = request.node.get_closest_marker("server_config")
    kwargs = dict(marker.kwargs) if marker else {}
    model_kwargs = kwargs.pop("model", {})
    predictor = kwargs.pop("predictor", None) or StubPredictor()
    server = AsyncServingServer(**{"max_in_flight": 64, "workers": 2, **kwargs})
    server.add_model("stub", predictor, **model_kwargs)
    thread = ServerThread(server)
    host, port = thread.start()
    yield server, host, port, predictor
    thread.stop()


class TestRoundTrips:
    def test_health(self, running):
        _, host, port, _ = running
        with ServingClient.connect(host, port) as client:
            health = client.health()
        assert health["status"] == "ok"
        assert health["protocol"] == protocol.PROTOCOL_VERSION
        assert health["models"] == ["stub"]
        assert health["uptime_s"] >= 0

    def test_explicit_predict_matches_model(self, running):
        _, host, port, _ = running
        obs = make_obs(1)
        with ServingClient.connect(host, port) as client:
            samples, meta = client.predict("stub", obs, return_meta=True)
        assert samples.shape == (1, 12, 2)
        np.testing.assert_allclose(samples[0], expected_extrapolation(obs), atol=1e-9)
        assert meta["row"] < meta["batch_size"]
        assert meta["batch_id"] >= 0

    def test_observe_then_predict_frame(self, running):
        _, host, port, _ = running
        tracks = {"a": make_obs(2), "b": make_obs(3) + 5.0}
        with ServingClient.connect(host, port) as client:
            for frame in range(8):
                result = client.observe(
                    "stub", frame, {k: obs[frame] for k, obs in tracks.items()}
                )
            assert result["agents"] == 2
            assert result["ready"] == ["a", "b"]
            agents = client.predict_frame("stub", 7)
        assert set(agents) == {"a", "b"}
        for agent_id, obs in tracks.items():
            assert agents[agent_id].shape == (1, 12, 2)
            np.testing.assert_allclose(
                agents[agent_id][0], expected_extrapolation(obs), atol=1e-9
            )

    def test_observe_evicts_stale_windows(self, running):
        """Silence is eviction: ids not seen for stale_after * obs_len frames
        are dropped on the next observe, bounding per-connection state."""
        server, host, port, _ = running
        horizon = server.stale_after * 8  # stale_after windows of obs_len 8
        with ServingClient.connect(host, port) as client:
            client.observe("stub", 0, {"ghost": (0.0, 0.0)})
            result = client.observe("stub", horizon, {"live": (1.0, 1.0)})
            assert result["dropped"] == 0  # ghost is exactly at the horizon
            result = client.observe("stub", horizon + 1, {"live": (1.0, 1.1)})
            assert result["dropped"] == 1
            assert result["agents"] == 1  # only "live" remains

    def test_predict_frame_with_no_ready_agents(self, running):
        _, host, port, _ = running
        with ServingClient.connect(host, port) as client:
            client.observe("stub", 0, {"a": (0.0, 0.0)})  # partial window
            assert client.predict_frame("stub", 0) == {}

    def test_stats_counters(self, running):
        _, host, port, _ = running
        with ServingClient.connect(host, port) as client:
            client.predict("stub", make_obs(4))
            stats = client.stats()
        assert stats["server"]["accepted"] == 1
        assert stats["server"]["in_flight"] == 0
        assert stats["server"]["in_flight_peak"] >= 1
        model = stats["models"]["stub"]
        assert model["total_completed"] == 1
        assert model["latency"]["count"] == 1
        assert model["latency"]["mean_s"] > 0


class TestIsolation:
    def test_same_agent_ids_on_two_connections_do_not_collide(self, running):
        """Streaming windows are per connection: identical agent ids with
        different trajectories must yield each client its own prediction."""
        _, host, port, _ = running
        track_a, track_b = make_obs(10), make_obs(11) + 40.0
        with ServingClient.connect(host, port) as one, ServingClient.connect(
            host, port
        ) as two:
            for frame in range(8):
                one.observe("stub", frame, {"agent": track_a[frame]})
                two.observe("stub", frame, {"agent": track_b[frame]})
            served_one = one.predict_frame("stub", 7)["agent"]
            served_two = two.predict_frame("stub", 7)["agent"]
        np.testing.assert_allclose(
            served_one[0], expected_extrapolation(track_a), atol=1e-9
        )
        np.testing.assert_allclose(
            served_two[0], expected_extrapolation(track_b), atol=1e-9
        )
        assert not np.allclose(served_one, served_two)


class TestErrors:
    def test_unknown_model(self, running):
        _, host, port, _ = running
        with ServingClient.connect(host, port) as client:
            with pytest.raises(RemoteServingError) as excinfo:
                client.predict("nope", make_obs())
        assert excinfo.value.code == protocol.E_UNKNOWN_MODEL

    def test_bad_window_length(self, running):
        _, host, port, _ = running
        with ServingClient.connect(host, port) as client:
            with pytest.raises(RemoteServingError) as excinfo:
                client.predict("stub", make_obs(obs_len=5))
        assert excinfo.value.code == protocol.E_BAD_REQUEST

    def test_malformed_predict(self, running):
        _, host, port, _ = running
        with ServingClient.connect(host, port) as client:
            with pytest.raises(RemoteServingError) as excinfo:
                client.call("predict", model="stub")  # neither obs nor frame
        assert excinfo.value.code == protocol.E_BAD_REQUEST

    def test_unknown_operation(self, running):
        _, host, port, _ = running
        with ServingClient.connect(host, port) as client:
            with pytest.raises(RemoteServingError) as excinfo:
                client.call("train", model="stub")
        assert excinfo.value.code == protocol.E_UNKNOWN_OP

    def test_version_mismatch(self, running):
        _, host, port, _ = running
        import socket

        with socket.create_connection((host, port)) as sock:
            protocol.write_frame_sync(sock, {"v": 99, "id": 1, "op": "health"})
            response = protocol.read_frame_sync(sock)
        assert response["ok"] is False
        assert response["error"]["code"] == protocol.E_UNSUPPORTED_VERSION
        assert response["id"] == 1

    def test_internal_error_is_typed(self, running):
        server, host, port, predictor = running

        def explode(batch, num_samples, rng):
            raise RuntimeError("model melted")

        predictor.predict_world = explode
        with ServingClient.connect(host, port) as client:
            with pytest.raises(RemoteServingError) as excinfo:
                client.predict("stub", make_obs())
        assert excinfo.value.code == protocol.E_INTERNAL
        assert "model melted" in str(excinfo.value)


class TestBackpressure:
    @pytest.mark.server_config(
        max_in_flight=2, predictor=StubPredictor(delay=0.25), model={"max_wait": 0.0}
    )
    def test_overload_fast_fails(self, running):
        """With the cap at 2 and a slow model, a third concurrent predict is
        rejected immediately with ``overloaded`` instead of queueing."""
        _, host, port, _ = running
        results: dict[str, object] = {}

        def slow_call(name: str) -> None:
            with ServingClient.connect(host, port) as client:
                try:
                    results[name] = client.predict("stub", make_obs())
                except RemoteServingError as error:
                    results[name] = error

        threads = [
            threading.Thread(target=slow_call, args=(f"c{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.1)  # both slow predictions are now in flight
        start = time.perf_counter()
        with ServingClient.connect(host, port) as client:
            with pytest.raises(RemoteServingError) as excinfo:
                client.predict("stub", make_obs())
        fast_fail = time.perf_counter() - start
        for thread in threads:
            thread.join()
        assert excinfo.value.code == protocol.E_OVERLOADED
        assert fast_fail < 0.2  # rejected without waiting for the slow model
        assert all(isinstance(v, np.ndarray) for v in results.values())

    @pytest.mark.server_config(model={"max_wait": 30.0, "max_batch_size": 64})
    def test_flush_releases_waiting_partial_batch(self, running):
        """With a huge max_wait the only way a partial batch runs is an
        explicit ``flush`` — the max-wait timer lives on the server."""
        _, host, port, _ = running
        received = {}

        def waiting_predict() -> None:
            with ServingClient.connect(host, port) as client:
                received["samples"] = client.predict("stub", make_obs())

        thread = threading.Thread(target=waiting_predict)
        thread.start()
        time.sleep(0.15)
        assert "samples" not in received  # still coalescing
        with ServingClient.connect(host, port) as client:
            assert client.flush("stub") == 1
        thread.join(timeout=5.0)
        assert received["samples"].shape == (1, 12, 2)

    @pytest.mark.server_config(
        predictor=StubPredictor(delay=0.05), model={"max_wait": 0.0}
    )
    def test_concurrent_clients_coalesce(self, running):
        """Closed-loop concurrent clients must produce multi-row batches
        (adaptive batching under backpressure), not a convoy of singles."""
        _, host, port, predictor = running
        num_clients, per_client = 6, 6

        def run_client(seed: int) -> None:
            with ServingClient.connect(host, port) as client:
                for i in range(per_client):
                    client.predict("stub", make_obs(seed * 100 + i))

        threads = [
            threading.Thread(target=run_client, args=(c,)) for c in range(num_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(predictor.batch_sizes) == num_clients * per_client
        assert max(predictor.batch_sizes) > 1  # genuine coalescing happened


class TestRealModelEquivalence:
    def test_served_predictions_match_offline_replay(
        self, trained_vanilla, request_factory
    ):
        """Network-served samples equal the offline ``predict_samples`` path
        on the identically-composed batch, recomposed from the response meta
        and the per-flush RNG derivation (the bench_server gate, in-suite)."""
        from repro.serve import Predictor, collate_requests

        predictor = Predictor(trained_vanilla)
        seed, num_samples = 42, 2
        server = AsyncServingServer(max_in_flight=64, workers=2, seed=seed)
        server.add_model("vanilla", predictor, num_samples=num_samples)
        with ServerThread(server) as thread:
            host, port = server.address
            sent = []
            with ServingClient.connect(host, port) as client:
                for i in range(6):
                    request = request_factory(i, num_neighbours=i % 3)
                    samples, meta = client.predict(
                        "vanilla",
                        request.obs,
                        neighbours=request.neighbours,
                        return_meta=True,
                    )
                    sent.append((request, samples, meta))
        # Recompose each served batch offline, in row order.
        by_batch: dict[int, list] = {}
        for request, samples, meta in sent:
            by_batch.setdefault(meta["batch_id"], []).append((request, samples, meta))
        for batch_id, rows in by_batch.items():
            rows.sort(key=lambda entry: entry[2]["row"])
            assert len(rows) == rows[0][2]["batch_size"]  # this client sent all rows
            batch = collate_requests(
                [request for request, _, _ in rows], pred_len=predictor.pred_len
            )
            offline = trained_vanilla.predict(
                batch, num_samples, np.random.default_rng((seed, batch_id))
            )
            offline_world = offline + batch.origins[None, :, None, :]
            for row, (_, served, _) in enumerate(rows):
                np.testing.assert_allclose(served, offline_world[:, row], atol=1e-6)

    def test_compiled_predictions_replay_offline(
        self, trained_vanilla, request_factory
    ):
        """The compiled fast path preserves the offline-replay invariant:
        samples served through planned execution recompose from
        ``(seed, batch_id)`` against the *eager* reference to 1e-6 — the
        ISSUE acceptance gate for serving-side compilation."""
        from repro.serve import Predictor, collate_requests

        predictor = Predictor(trained_vanilla, compile=True)
        seed, num_samples = 42, 2
        server = AsyncServingServer(max_in_flight=64, workers=2, seed=seed)
        server.add_model("vanilla", predictor, num_samples=num_samples)
        with ServerThread(server):
            host, port = server.address
            sent = []
            with ServingClient.connect(host, port) as client:
                for i in range(8):
                    request = request_factory(i, num_neighbours=i % 3)
                    samples, meta = client.predict(
                        "vanilla",
                        request.obs,
                        neighbours=request.neighbours,
                        return_meta=True,
                    )
                    sent.append((request, samples, meta))
        stats = predictor.compile_stats()
        assert stats["broken"] is None, stats
        assert stats["plans"] > 0 and stats["fallbacks"] == 0, stats
        by_batch: dict[int, list] = {}
        for request, samples, meta in sent:
            by_batch.setdefault(meta["batch_id"], []).append((request, samples, meta))
        for batch_id, rows in by_batch.items():
            rows.sort(key=lambda entry: entry[2]["row"])
            batch = collate_requests(
                [request for request, _, _ in rows], pred_len=predictor.pred_len
            )
            # Eager reference replay — bypasses the plan cache on purpose.
            offline = trained_vanilla.predict(
                batch, num_samples, np.random.default_rng((seed, batch_id))
            )
            offline_world = offline + batch.origins[None, :, None, :]
            for row, (_, served, _) in enumerate(rows):
                np.testing.assert_allclose(served, offline_world[:, row], atol=1e-6)


class TestShutdown:
    @pytest.mark.server_config(model={"max_wait": 30.0, "max_batch_size": 64})
    def test_stop_terminates_waiting_clients(self, running):
        """Clients waiting on a never-flushed batch get ``shutting_down``
        instead of hanging (the PR-4 shutdown bugfix, observed on the wire)."""
        server, host, port, _ = running
        outcome = {}

        def waiting_predict() -> None:
            with ServingClient.connect(host, port) as client:
                try:
                    outcome["value"] = client.predict("stub", make_obs())
                except Exception as error:  # noqa: BLE001 - recorded for assert
                    outcome["value"] = error

        thread = threading.Thread(target=waiting_predict)
        thread.start()
        time.sleep(0.15)
        import asyncio

        asyncio.run_coroutine_threadsafe(
            server.stop(), server._loop
        ).result(timeout=10.0)
        thread.join(timeout=5.0)
        assert not thread.is_alive(), "client hung through server shutdown"
        assert isinstance(outcome["value"], RemoteServingError)
        assert outcome["value"].code == protocol.E_SHUTTING_DOWN


class TestRouter:
    """Unit tests for the weighted least-in-flight router."""

    @staticmethod
    def make_replicas(*weights):
        from repro.serve.server import _Replica

        return [
            _Replica(index, StubPredictor(), weight)
            for index, weight in enumerate(weights)
        ]

    def test_picks_least_in_flight(self):
        from repro.serve.server import Router

        replicas = self.make_replicas(1.0, 1.0)
        router = Router(replicas)
        assert router.pick() is replicas[0]  # tie -> lowest index
        replicas[0].active = 2
        assert router.pick() is replicas[1]
        replicas[1].active = 3
        assert router.pick() is replicas[0]

    def test_weights_bias_placement(self):
        from repro.serve.server import Router

        replicas = self.make_replicas(1.0, 2.0)
        router = Router(replicas)
        # Schedule 6 chunks without completion: the weight-2 replica should
        # absorb ~2/3 of them.
        for _ in range(6):
            router.pick().active += 1
        assert (replicas[0].active, replicas[1].active) == (2, 4)

    def test_idle_signal(self):
        from repro.serve.server import Router

        replicas = self.make_replicas(1.0, 1.0)
        router = Router(replicas)
        assert router.idle
        replicas[0].active = 1
        assert router.idle  # one replica still free
        replicas[1].active = 1
        assert not router.idle

    def test_rejects_bad_weights(self):
        from repro.serve.server import Router

        with pytest.raises(ValueError, match="> 0"):
            Router(self.make_replicas(1.0, 0.0))
        with pytest.raises(ValueError, match="at least one"):
            Router([])


class TestReplicaServing:
    def test_shared_module_tree_rejected(self):
        server = AsyncServingServer()
        predictor = StubPredictor()
        with pytest.raises(ValueError, match="share"):
            server.add_model("stub", [predictor, predictor])

    def test_weights_length_mismatch_rejected(self):
        server = AsyncServingServer()
        with pytest.raises(ValueError, match="weights"):
            server.add_model(
                "stub", [StubPredictor(), StubPredictor()], weights=[1.0]
            )

    def test_empty_replica_list_rejected(self):
        server = AsyncServingServer()
        with pytest.raises(ValueError, match="at least one"):
            server.add_model("stub", [])

    @pytest.mark.server_config(
        predictor=[StubPredictor(delay=0.02), StubPredictor(delay=0.02)],
        model={"max_wait": 0.0},
    )
    def test_two_replicas_spread_load_and_stay_correct(self, running):
        """Concurrent load over a 2-replica pool: both replicas execute
        chunks, every response is correct, and the shared batch_id sequence
        has no collisions (each batch's rows are complete)."""
        _, host, port, predictors = running
        num_clients, per_client = 6, 5
        records: list[tuple[int, int, np.ndarray, dict]] = []
        lock = threading.Lock()

        def run_client(seed: int) -> None:
            with ServingClient.connect(host, port) as client:
                for i in range(per_client):
                    obs = make_obs(seed * 100 + i)
                    samples, meta = client.predict("stub", obs, return_meta=True)
                    with lock:
                        records.append((seed, i, samples, meta))

        threads = [
            threading.Thread(target=run_client, args=(c,)) for c in range(num_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Every response is the correct extrapolation of its own window.
        for seed, i, samples, _ in records:
            np.testing.assert_allclose(
                samples[0],
                expected_extrapolation(make_obs(seed * 100 + i)),
                atol=1e-9,
            )
        # Both replicas actually ran forwards.
        executed = [sum(p.batch_sizes) for p in predictors]
        assert sum(executed) == num_clients * per_client
        assert all(count > 0 for count in executed), (
            f"load was not spread across replicas: {executed}"
        )
        # The shared per-model batch_id sequence kept the replay meta
        # coherent: each batch's rows are complete and unique.
        by_batch: dict[int, list[dict]] = {}
        for _, _, _, meta in records:
            by_batch.setdefault(meta["batch_id"], []).append(meta)
        for batch_id, metas in by_batch.items():
            rows = sorted(meta["row"] for meta in metas)
            assert rows == list(range(metas[0]["batch_size"])), (
                f"batch {batch_id} rows incomplete or duplicated: {rows}"
            )

    @pytest.mark.server_config(
        predictor=[StubPredictor(), StubPredictor()], model={"max_wait": 0.0}
    )
    def test_stats_surface_replicas(self, running):
        _, host, port, _ = running
        with ServingClient.connect(host, port) as client:
            client.predict("stub", make_obs(1))
            stats = client.stats()
        replicas = stats["models"]["stub"]["replicas"]
        assert len(replicas) == 2
        assert sum(r["completed"] for r in replicas) == 1
        assert all(r["weight"] == 1.0 and r["active"] == 0 for r in replicas)


class TestBinaryWire:
    def test_binary_predict_matches_json(self, running):
        _, host, port, _ = running
        obs = make_obs(5)
        with ServingClient.connect(host, port) as plain:
            expected = plain.predict("stub", obs)
            json_bytes = plain.last_response_bytes
        with ServingClient.connect(host, port, binary=True) as client:
            assert client.supports_binary()
            samples, meta = client.predict("stub", obs, return_meta=True)
            binary_bytes = client.last_response_bytes
        np.testing.assert_allclose(samples, expected, atol=1e-6)  # f4 tail
        assert meta["batch_size"] >= 1
        assert binary_bytes < json_bytes

    def test_binary_f8_is_bit_exact(self, running):
        _, host, port, _ = running
        obs = make_obs(6)
        neighbours = np.stack([make_obs(7), make_obs(8)])
        with ServingClient.connect(host, port) as plain:
            expected = plain.predict("stub", obs, neighbours=neighbours)
        with ServingClient.connect(host, port, binary=True, dtype="f8") as client:
            samples = client.predict("stub", obs, neighbours=neighbours)
        np.testing.assert_array_equal(samples, expected)

    def test_binary_predict_frame(self, running):
        _, host, port, _ = running
        track = make_obs(9)
        with ServingClient.connect(host, port, binary=True) as client:
            for frame in range(8):
                client.observe("stub", frame, {"a": track[frame]})
            agents = client.predict_frame("stub", 7)
        np.testing.assert_allclose(
            agents["a"][0], expected_extrapolation(track), atol=1e-5
        )

    def test_bad_dtype_rejected(self, running):
        _, host, port, _ = running
        with ServingClient.connect(host, port) as client:
            with pytest.raises(RemoteServingError) as excinfo:
                client.call(
                    "predict", model="stub", obs=make_obs().tolist(),
                    bin=True, dtype="f2",
                )
        assert excinfo.value.code == protocol.E_BAD_REQUEST

    def test_json_request_can_ask_for_binary_response(self, running):
        """`bin: true` is in-band: even a JSON-framed request opts in."""
        import socket

        _, host, port, _ = running
        with socket.create_connection((host, port)) as sock:
            message = protocol.request(
                "predict", 1, model="stub", obs=make_obs(3).tolist(), bin=True
            )
            sock.sendall(protocol.encode_frame(message))
            response = protocol.read_frame_sync(sock)
        assert response["ok"]
        assert isinstance(response["result"]["samples"], np.ndarray)
        assert response["result"]["samples"].dtype == np.float32


class TestV1Compatibility:
    """A protocol-v1 JSON-only client against the v2 server, end to end."""

    def test_v1_full_flow(self, running):
        """observe -> predict (explicit + frame) -> stats, all with v1
        envelopes and pure-JSON frames: the v2 server must serve the whole
        flow and answer with v1-stamped JSON frames."""
        import socket

        _, host, port, _ = running
        track = make_obs(12)

        def v1_call(sock, req_id, op, **fields):
            sock.sendall(
                protocol.encode_frame({"v": 1, "id": req_id, "op": op, **fields})
            )
            raw = protocol.read_frame_sync(sock)
            assert raw["v"] == 1, "response must echo the v1 envelope version"
            assert raw["id"] == req_id
            assert raw["ok"], raw.get("error")
            return raw["result"]

        with socket.create_connection((host, port)) as sock:
            health = v1_call(sock, 1, "health")
            assert health["status"] == "ok"
            assert 1 in health["protocols"]
            for frame in range(8):
                v1_call(
                    sock, 10 + frame, "observe", model="stub", frame=frame,
                    positions={"a": list(map(float, track[frame]))},
                )
            by_frame = v1_call(sock, 20, "predict", model="stub", frame=7)
            samples = np.asarray(by_frame["agents"]["a"]["samples"])
            np.testing.assert_allclose(
                samples[0], expected_extrapolation(track), atol=1e-9
            )
            explicit = v1_call(
                sock, 21, "predict", model="stub", obs=track.tolist()
            )
            assert isinstance(explicit["samples"], list)  # pure JSON payload
            stats = v1_call(sock, 22, "stats")
            assert stats["models"]["stub"]["total_completed"] == 2
