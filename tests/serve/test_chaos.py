"""Fault-tolerance tests: deadlines, breakers, swaps, injected chaos.

Every scenario here drives real components — the in-process batcher, or a
real ``AsyncServingServer`` on a loopback socket — with faults injected
through the seeded :mod:`repro.serve.faults` harness, and asserts the
robustness contract: every request resolves as a valid reply or a *typed*
error, nothing hangs, and the server keeps serving afterwards.
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.serve import (
    AsyncServingServer,
    ChaosProxy,
    CircuitBreaker,
    DeadlineExceededError,
    FaultError,
    FaultPlan,
    FaultRule,
    FaultyPredictor,
    MicroBatcher,
    PredictRequest,
    RemoteServingError,
    RetryPolicy,
    ServerThread,
    ServingClient,
    ServingClosedError,
)
from repro.serve import protocol


class StubPredictor:
    """Deterministic velocity-extrapolation predictor (scalable for swaps)."""

    pred_len = 12
    obs_len = 8

    def __init__(self, delay: float = 0.0, scale: float = 1.0) -> None:
        self.delay = delay
        self.scale = scale

    def predict_world(self, batch, num_samples, rng):
        if self.delay:
            time.sleep(self.delay)
        velocity = (batch.obs[:, -1] - batch.obs[:, -2]) * self.scale
        steps = np.arange(1, self.pred_len + 1)[None, :, None]
        future = batch.obs[:, -1][:, None, :] + velocity[:, None, :] * steps
        world = future + batch.origins[:, None, :]
        return np.repeat(world[None], num_samples, axis=0)


def expected_extrapolation(obs, pred_len=12, scale=1.0):
    velocity = (obs[-1] - obs[-2]) * scale
    steps = np.arange(1, pred_len + 1)[:, None]
    return obs[-1][None, :] + velocity[None, :] * steps


def make_obs(seed: int = 0, obs_len: int = 8) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.normal(size=(obs_len, 2)), axis=0)


def make_request(seed: int = 0, deadline: float | None = None) -> PredictRequest:
    return PredictRequest(request_id=seed, obs=make_obs(seed), deadline=deadline)


def serve(server: AsyncServingServer):
    """Start ``server`` on a thread; returns (thread, host, port)."""
    thread = ServerThread(server)
    host, port = thread.start()
    return thread, host, port


# ----------------------------------------------------------------------
# The fault harness itself
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_same_seed_same_fault_sequence(self):
        rules = [
            FaultRule("predict", "error", rate=0.3),
            FaultRule("predict", "latency", rate=0.2, delay=0.0),
        ]
        one = FaultPlan(11, rules)
        two = FaultPlan(11, rules)
        seq1 = [getattr(one.draw("predict"), "kind", None) for _ in range(50)]
        seq2 = [getattr(two.draw("predict"), "kind", None) for _ in range(50)]
        assert seq1 == seq2
        assert "error" in seq1 and None in seq1  # the storm is a mix

    def test_sites_have_independent_streams_and_counters(self):
        plan = FaultPlan(
            3,
            [
                FaultRule("predict", "error", rate=1.0),
                FaultRule("response", "drop", rate=1.0),
            ],
        )
        assert plan.draw("response").kind == "drop"
        assert plan.draw("predict").kind == "error"
        assert plan.calls("predict") == 1
        assert plan.calls("response") == 1
        assert plan.injected == {"predict:error": 1, "response:drop": 1}

    def test_after_and_count_bound_the_storm(self):
        plan = FaultPlan(0, [FaultRule("predict", "error", rate=1.0, after=2, count=3)])
        kinds = [getattr(plan.draw("predict"), "kind", None) for _ in range(8)]
        assert kinds == [None, None, "error", "error", "error", None, None, None]

    def test_apply_raises_errors_and_sleeps_latency(self):
        plan = FaultPlan(
            0,
            [
                FaultRule("predict", "latency", rate=1.0, count=1, delay=1.5),
                FaultRule("predict", "error", rate=1.0, message="kaboom"),
            ],
        )
        sleeps: list[float] = []
        plan._sleep = sleeps.append
        assert plan.apply("predict").kind == "latency"
        assert sleeps == [1.5]
        with pytest.raises(FaultError, match="kaboom"):
            plan.apply("predict")

    def test_rule_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultRule("predict", "segfault")
        with pytest.raises(ValueError, match="rate"):
            FaultRule("predict", "error", rate=1.5)
        with pytest.raises(ValueError, match="count"):
            FaultRule("predict", "error", count=0)

    def test_faulty_predictor_delegates_attributes(self):
        inner = StubPredictor()
        faulty = FaultyPredictor(inner, FaultPlan(0, []))
        assert faulty.obs_len == 8 and faulty.pred_len == 12
        # The server's shared-module-tree check must see the *inner* tree.
        assert getattr(faulty, "method", faulty.inner) is inner


# ----------------------------------------------------------------------
# Circuit breaker state machine
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_errors(self):
        tick = [0.0]
        breaker = CircuitBreaker(threshold=3, cooldown=10.0, clock=lambda: tick[0])
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_success()  # streak resets
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 1
        assert not breaker.available()

    def test_cooldown_then_half_open_probe(self):
        tick = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=lambda: tick[0])
        breaker.record_failure()
        assert not breaker.available()
        tick[0] = 5.1
        assert breaker.available()  # transitions to half-open
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_failed_probe_reopens_and_restarts_cooldown(self):
        tick = [0.0]
        breaker = CircuitBreaker(threshold=3, cooldown=5.0, clock=lambda: tick[0])
        for _ in range(3):
            breaker.record_failure()
        tick[0] = 5.1
        assert breaker.available()
        breaker.record_failure()  # the probe failed: open again immediately
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 2
        tick[0] = 10.0  # cooldown restarted at 5.1, not yet elapsed
        assert not breaker.available()

    def test_validation_and_snapshot(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1.0)
        snap = CircuitBreaker(threshold=2, cooldown=0.5).snapshot()
        assert snap == {
            "state": "closed",
            "consecutive_errors": 0,
            "threshold": 2,
            "cooldown_s": 0.5,
            "opens": 0,
        }


# ----------------------------------------------------------------------
# Batcher error paths (satellite: typed mid-chunk errors, never hangs)
# ----------------------------------------------------------------------
class TestBatcherFaultPaths:
    def test_mid_chunk_error_resolves_handles_typed_not_closed(self):
        plan = FaultPlan(0, [FaultRule("predict", "error", rate=1.0, count=1)])
        batcher = MicroBatcher(
            FaultyPredictor(StubPredictor(), plan),
            auto_flush=False,
            max_batch_size=4,
        )
        handles = [batcher.submit(make_request(i)) for i in range(3)]
        (chunk,) = batcher.take_ready(force=True)
        with pytest.raises(FaultError):
            batcher.run_chunk(chunk)
        for handle in handles:
            assert handle.done
            assert isinstance(handle.error, FaultError)
            assert not isinstance(handle.error, ServingClosedError)
            with pytest.raises(FaultError):
                handle.result()
        assert batcher.total_failed == 3
        # The batcher survives the poisoned chunk: the next submit runs fine
        # (the fault plan's budget is spent).
        handle = batcher.submit(make_request(9))
        (chunk,) = batcher.take_ready(force=True)
        batcher.run_chunk(chunk)
        np.testing.assert_allclose(
            handle.result()[0], expected_extrapolation(make_obs(9)), atol=1e-9
        )

    def test_expired_requests_swept_before_pop(self):
        tick = [0.0]
        batcher = MicroBatcher(
            StubPredictor(), auto_flush=False, clock=lambda: tick[0]
        )
        doomed = batcher.submit(make_request(0, deadline=1.0))
        alive = batcher.submit(make_request(1, deadline=50.0))
        tick[0] = 2.0
        expired = batcher.expire_pending()
        assert expired == [doomed]
        assert isinstance(doomed.error, DeadlineExceededError)
        assert batcher.total_expired == 1
        assert batcher.pending_count == 1
        (chunk,) = batcher.take_ready(force=True)
        batcher.run_chunk(chunk)
        assert alive.error is None
        # The executed batch collated without the expired row.
        assert alive.batch_size == 1

    def test_expired_rows_swept_out_of_a_popped_chunk(self):
        tick = [0.0]
        batcher = MicroBatcher(
            StubPredictor(), auto_flush=False, clock=lambda: tick[0]
        )
        doomed = batcher.submit(make_request(0, deadline=1.0))
        alive = batcher.submit(make_request(1))
        (chunk,) = batcher.take_ready(force=True)
        tick[0] = 3.0  # deadline passes while the chunk waits for a worker
        batcher.run_chunk(chunk)
        assert isinstance(doomed.error, DeadlineExceededError)
        assert "missed its deadline" in str(doomed.error)
        assert alive.error is None and alive.batch_size == 1


# ----------------------------------------------------------------------
# Served fault storms: typed errors, breakers, recovery
# ----------------------------------------------------------------------
class TestServedFaults:
    def test_mixed_replicas_one_crashing_one_serving(self):
        """A crashing replica fails its chunks typed; the healthy sibling
        keeps answering correctly; the server survives all of it."""
        plan = FaultPlan(1, [FaultRule("predict", "error", rate=1.0)])
        server = AsyncServingServer(
            max_in_flight=64, workers=2, breaker_threshold=10_000
        )
        server.add_model(
            "stub",
            [FaultyPredictor(StubPredictor(delay=0.01), plan), StubPredictor()],
            max_batch_size=1,
        )
        thread, host, port = serve(server)
        try:
            outcomes: list[str] = []
            lock = threading.Lock()

            def worker(seed: int) -> None:
                obs = make_obs(seed)
                with ServingClient.connect(host, port) as client:
                    for i in range(6):
                        try:
                            samples = client.predict("stub", obs)
                            np.testing.assert_allclose(
                                samples[0],
                                expected_extrapolation(obs),
                                atol=1e-9,
                            )
                            outcome = "ok"
                        except RemoteServingError as error:
                            assert error.code == protocol.E_INTERNAL
                            assert "FaultError" in str(error)
                            outcome = "typed_error"
                        with lock:
                            outcomes.append(outcome)

            threads = [
                threading.Thread(target=worker, args=(seed,)) for seed in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert not any(t.is_alive() for t in threads), "a client hung"
            assert len(outcomes) == 24  # every request resolved
            assert "ok" in outcomes and "typed_error" in outcomes
            # And the pool still serves:
            with ServingClient.connect(host, port) as client:
                assert client.health()["status"] == "ok"
        finally:
            thread.stop()

    def test_all_breakers_open_fast_fails_unavailable_then_recovers(self):
        plan = FaultPlan(2, [FaultRule("predict", "error", rate=1.0, count=2)])
        server = AsyncServingServer(
            workers=1, breaker_threshold=2, breaker_cooldown=0.2
        )
        server.add_model(
            "stub", FaultyPredictor(StubPredictor(), plan), max_batch_size=1
        )
        thread, host, port = serve(server)
        try:
            obs = make_obs(4)
            with ServingClient.connect(host, port) as client:
                for _ in range(2):
                    with pytest.raises(RemoteServingError) as excinfo:
                        client.predict("stub", obs)
                    assert excinfo.value.code == protocol.E_INTERNAL
                # Threshold reached: the lone breaker is open, admission
                # fast-fails typed `unavailable` without queueing.
                with pytest.raises(RemoteServingError) as excinfo:
                    client.predict("stub", obs)
                assert excinfo.value.code == protocol.E_UNAVAILABLE
                breaker = client.stats()["models"]["stub"]["replicas"][0]["breaker"]
                assert breaker["state"] == "open"
                assert breaker["opens"] == 1
                # After the cooldown the half-open probe meets a healed
                # replica (the fault budget is spent) and closes the breaker.
                time.sleep(0.3)
                samples = client.predict("stub", obs)
                np.testing.assert_allclose(
                    samples[0], expected_extrapolation(obs), atol=1e-9
                )
                breaker = client.stats()["models"]["stub"]["replicas"][0]["breaker"]
                assert breaker["state"] == "closed"
                metrics = client.metrics()["metrics"]
                assert metrics["counters"]['serve_breaker_opened{model=stub}'] == 1
        finally:
            thread.stop()

    def test_unavailable_is_retried_until_recovery(self):
        """A RetryPolicy treats `unavailable` as transient: with a backoff
        spanning the breaker cooldown, the caller never sees the outage."""
        plan = FaultPlan(3, [FaultRule("predict", "error", rate=1.0, count=1)])
        server = AsyncServingServer(
            workers=1, breaker_threshold=1, breaker_cooldown=0.05
        )
        server.add_model(
            "stub", FaultyPredictor(StubPredictor(), plan), max_batch_size=1
        )
        thread, host, port = serve(server)
        try:
            obs = make_obs(5)
            with ServingClient.connect(
                host,
                port,
                retry=RetryPolicy(retries=6, base_delay=0.05, jitter=0.0),
            ) as client:
                with pytest.raises(RemoteServingError):
                    client.predict("stub", obs)  # trips the breaker (internal)
                samples = client.predict("stub", obs)  # unavailable -> retried
                np.testing.assert_allclose(
                    samples[0], expected_extrapolation(obs), atol=1e-9
                )
        finally:
            thread.stop()


# ----------------------------------------------------------------------
# Deadlines on the wire
# ----------------------------------------------------------------------
class TestServedDeadlines:
    def test_queued_request_expires_with_typed_error_before_inference(self):
        server = AsyncServingServer(workers=1)
        slow = StubPredictor(delay=0.4)
        server.add_model("stub", slow, max_batch_size=1)
        thread, host, port = serve(server)
        try:
            blocker = threading.Thread(
                target=lambda: ServingClient.connect(host, port).predict(
                    "stub", make_obs(0), deadline_ms=0
                )
            )
            blocker.start()
            time.sleep(0.1)  # the slow flush now owns the only replica
            started = time.monotonic()
            with ServingClient.connect(host, port) as client:
                with pytest.raises(RemoteServingError) as excinfo:
                    client.predict("stub", make_obs(1), deadline_ms=50)
            elapsed = time.monotonic() - started
            blocker.join(timeout=10.0)
            assert excinfo.value.code == protocol.E_DEADLINE_EXCEEDED
            # Answered from the queue sweep, not after the 400ms flush.
            assert elapsed < 0.35
            with ServingClient.connect(host, port) as client:
                stats = client.stats()["models"]["stub"]
                assert stats["total_expired"] == 1
                metrics = client.metrics()["metrics"]
                assert (
                    metrics["counters"]["serve_deadline_expired{model=stub}"] == 1
                )
        finally:
            thread.stop()

    @pytest.mark.parametrize("bad", [0, -5, "soon", True])
    def test_invalid_deadline_ms_is_bad_request(self, bad):
        server = AsyncServingServer()
        server.add_model("stub", StubPredictor())
        thread, host, port = serve(server)
        try:
            with ServingClient.connect(host, port) as client:
                with pytest.raises(RemoteServingError) as excinfo:
                    client.call(
                        "predict",
                        model="stub",
                        obs=make_obs(0).tolist(),
                        deadline_ms=bad,
                    )
            assert excinfo.value.code == protocol.E_BAD_REQUEST
        finally:
            thread.stop()

    def test_generous_deadline_is_harmless(self):
        server = AsyncServingServer()
        server.add_model("stub", StubPredictor())
        thread, host, port = serve(server)
        try:
            obs = make_obs(6)
            with ServingClient.connect(host, port, timeout=5.0) as client:
                samples = client.predict("stub", obs)  # deadline_ms=5000 wired
            np.testing.assert_allclose(
                samples[0], expected_extrapolation(obs), atol=1e-9
            )
        finally:
            thread.stop()


class TestClientDeadlineMapping:
    def capture_fields(self, client):
        captured = {}

        def scripted(op, fields):
            captured.update(fields)
            return {"samples": [[[0.0, 0.0]]], "meta": {}, "agents": {}}

        client._call_once = scripted
        return captured

    def make_client(self, timeout):
        import socket

        a, b = socket.socketpair()
        b.close()
        return ServingClient(a, timeout=timeout)

    def test_timeout_maps_to_wire_deadline_by_default(self):
        client = self.make_client(timeout=2.5)
        fields = self.capture_fields(client)
        client.predict("m", make_obs(0))
        assert fields["deadline_ms"] == 2500.0

    def test_explicit_deadline_overrides_and_zero_disables(self):
        client = self.make_client(timeout=2.5)
        fields = self.capture_fields(client)
        client.predict("m", make_obs(0), deadline_ms=150)
        assert fields["deadline_ms"] == 150.0
        fields.clear()
        client.predict("m", make_obs(0), deadline_ms=0)
        assert "deadline_ms" not in fields

    def test_no_timeout_means_no_deadline(self):
        client = self.make_client(timeout=None)
        fields = self.capture_fields(client)
        client.predict_frame("m", 7)
        assert "deadline_ms" not in fields


# ----------------------------------------------------------------------
# Retry total-time budget (satellite)
# ----------------------------------------------------------------------
class TestRetryBudget:
    def drive(self, client, outcomes):
        sleeps: list[float] = []
        client._sleep = sleeps.append

        def scripted(op, fields):
            outcome = outcomes.pop(0)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        client._call_once = scripted
        return sleeps

    def make_client(self, retry, timeout=None):
        import socket

        a, b = socket.socketpair()
        b.close()
        return ServingClient(a, retry=retry, timeout=timeout)

    def test_max_elapsed_stops_backoff_stacking(self):
        policy = RetryPolicy(
            retries=10, base_delay=0.4, multiplier=2.0, jitter=0.0, max_elapsed=1.0
        )
        client = self.make_client(policy)
        sleeps = self.drive(
            client,
            [RemoteServingError(protocol.E_OVERLOADED, "busy") for _ in range(11)],
        )
        with pytest.raises(RemoteServingError):
            client.call("predict")
        # 0.4 + 0.8 would blow the 1.0s budget at the second sleep: only the
        # first retry is taken even though 10 were allowed.
        assert sleeps == [0.4]

    def test_budget_defaults_to_client_timeout(self):
        policy = RetryPolicy(retries=10, base_delay=0.3, multiplier=1.0, jitter=0.0)
        client = self.make_client(policy, timeout=1.0)
        sleeps = self.drive(
            client,
            [RemoteServingError(protocol.E_OVERLOADED, "busy") for _ in range(11)],
        )
        with pytest.raises(RemoteServingError):
            client.call("predict")
        assert sleeps == [0.3, 0.3, 0.3]  # 4th sleep would exceed 1.0s

    def test_no_timeout_no_budget(self):
        policy = RetryPolicy(
            retries=3, base_delay=10.0, max_delay=10.0, jitter=0.0
        )
        client = self.make_client(policy, timeout=None)
        sleeps = self.drive(
            client,
            [
                RemoteServingError(protocol.E_OVERLOADED, "busy"),
                {"fine": True},
            ],
        )
        assert client.call("predict") == {"fine": True}
        assert sleeps == [10.0]

    def test_invalid_max_elapsed_rejected(self):
        with pytest.raises(ValueError, match="max_elapsed"):
            RetryPolicy(max_elapsed=0.0)


# ----------------------------------------------------------------------
# Zero-downtime rollout
# ----------------------------------------------------------------------
class TestModelSwap:
    def test_swap_promotes_atomically_at_the_cutover_batch(self):
        server = AsyncServingServer(workers=2)
        server.add_model("stub", StubPredictor(scale=1.0), max_batch_size=1)
        thread, host, port = serve(server)
        try:
            obs = make_obs(7)
            with ServingClient.connect(host, port) as client:
                before, meta_before = client.predict("stub", obs, return_meta=True)
                np.testing.assert_allclose(
                    before[0], expected_extrapolation(obs, scale=1.0), atol=1e-9
                )
                result = thread.swap_model(
                    "stub", lambda: StubPredictor(scale=2.0), replicas=2
                )
                assert result["replicas"] == 2
                assert result["cutover_batch_id"] > meta_before["batch_id"]
                after, meta_after = client.predict("stub", obs, return_meta=True)
                np.testing.assert_allclose(
                    after[0], expected_extrapolation(obs, scale=2.0), atol=1e-9
                )
                assert meta_after["batch_id"] >= result["cutover_batch_id"]
                stats = client.stats()
                assert stats["server"]["model_swaps"] == 1
                assert len(stats["models"]["stub"]["replicas"]) == 2
                # New replicas start with fresh, closed breakers.
                assert all(
                    replica["breaker"]["state"] == "closed"
                    for replica in stats["models"]["stub"]["replicas"]
                )
        finally:
            thread.stop()

    def test_swap_under_load_drops_no_requests(self):
        server = AsyncServingServer(max_in_flight=128, workers=2)
        server.add_model("stub", StubPredictor(scale=1.0), max_batch_size=4)
        thread, host, port = serve(server)
        try:
            errors: list[Exception] = []
            checked = [0]
            cutover = [None]
            lock = threading.Lock()

            def load(seed: int) -> None:
                obs = make_obs(seed)
                want_old = expected_extrapolation(obs, scale=1.0)
                want_new = expected_extrapolation(obs, scale=2.0)
                try:
                    with ServingClient.connect(host, port) as client:
                        for _ in range(40):
                            samples, meta = client.predict(
                                "stub", obs, return_meta=True
                            )
                            # Until the swap lands, cutover is unknown: both
                            # oracles are admissible; afterwards the batch id
                            # decides which one must match.
                            old_ok = np.allclose(samples[0], want_old, atol=1e-9)
                            new_ok = np.allclose(samples[0], want_new, atol=1e-9)
                            cut = cutover[0]
                            if cut is None:
                                assert old_ok or new_ok
                            elif meta["batch_id"] >= cut:
                                assert new_ok
                            else:
                                assert old_ok
                            with lock:
                                checked[0] += 1
                except Exception as error:  # noqa: BLE001 - reported below
                    errors.append(error)

            threads = [
                threading.Thread(target=load, args=(seed,)) for seed in range(4)
            ]
            for t in threads:
                t.start()
            time.sleep(0.05)  # mid-load
            result = thread.swap_model(
                "stub", lambda: StubPredictor(scale=2.0), replicas=2
            )
            cutover[0] = result["cutover_batch_id"]
            for t in threads:
                t.join(timeout=30.0)
            assert not any(t.is_alive() for t in threads), "a client hung"
            assert errors == []
            assert checked[0] == 160  # zero dropped requests
        finally:
            thread.stop()


# ----------------------------------------------------------------------
# Transport chaos (connection drops via the proxy)
# ----------------------------------------------------------------------
class TestChaosProxy:
    def test_dropped_response_poisons_an_unguarded_client(self):
        server = AsyncServingServer()
        server.add_model("stub", StubPredictor())
        thread, host, port = serve(server)
        plan = FaultPlan(5, [FaultRule("response", "drop", rate=1.0, count=1)])
        try:
            with ChaosProxy((host, port), plan) as proxy:
                phost, pport = proxy.address
                with ServingClient.connect(phost, pport, timeout=5.0) as client:
                    with pytest.raises((protocol.ProtocolError, OSError)):
                        client.health()
                    assert client.poisoned
            assert proxy.dropped == 1
        finally:
            thread.stop()

    def test_reconnecting_retry_survives_connection_drops(self):
        server = AsyncServingServer()
        server.add_model("stub", StubPredictor())
        thread, host, port = serve(server)
        plan = FaultPlan(6, [FaultRule("response", "drop", rate=1.0, count=2)])
        try:
            with ChaosProxy((host, port), plan) as proxy:
                phost, pport = proxy.address
                obs = make_obs(8)
                with ServingClient.connect(
                    phost,
                    pport,
                    timeout=5.0,
                    retry=RetryPolicy(retries=5, base_delay=0.01, jitter=0.0),
                ) as client:
                    samples = client.predict("stub", obs)
                np.testing.assert_allclose(
                    samples[0], expected_extrapolation(obs), atol=1e-9
                )
                assert proxy.connections >= 3  # two drops, two reconnects
        finally:
            thread.stop()


# ----------------------------------------------------------------------
# Shutdown abandons nothing silently (satellite)
# ----------------------------------------------------------------------
class TestStopCancelsStragglers:
    def test_stop_cancels_and_counts_abandoned_tasks(self, capsys):
        server = AsyncServingServer(stop_timeout=0.05)
        server.add_model("stub", StubPredictor())
        thread, host, port = serve(server)
        client = ServingClient.connect(host, port)
        assert client.health()["status"] == "ok"

        async def plant() -> None:
            conn = next(iter(server._connections))
            task = server._loop.create_task(asyncio.sleep(60))
            conn.tasks.add(task)
            task.add_done_callback(conn.tasks.discard)

        asyncio.run_coroutine_threadsafe(plant(), thread._loop).result(5.0)
        started = time.monotonic()
        thread.stop()
        client.close()
        # The wedged task was cancelled (stop returned promptly), counted,
        # and logged — not silently awaited for 60s or leaked past shutdown.
        assert time.monotonic() - started < 10.0
        assert server.abandoned_tasks == 1
        assert "stop_abandoned_tasks" in capsys.readouterr().err
