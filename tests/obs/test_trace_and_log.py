"""Tests for request-lifecycle tracing spans and the JSON-line logger."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import STAGE_METRIC, STAGES, RequestTrace, Span, record_stages
from repro.obs.log import JsonLogger, get_logger


class FakeClock:
    """A manually advanced monotonic clock for deterministic span timing."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Span / RequestTrace
# ----------------------------------------------------------------------
def test_span_measures_elapsed_time():
    clock = FakeClock()
    span = Span("inference", clock=clock)
    with span:
        clock.advance(0.25)
    assert span.duration_s == pytest.approx(0.25)
    assert span.name == "inference"


def test_span_on_close_fires_even_on_exception():
    clock = FakeClock()
    seen = []
    with pytest.raises(RuntimeError):
        with Span("route", clock=clock, on_close=lambda n, s: seen.append((n, s))):
            clock.advance(0.1)
            raise RuntimeError("boom")
    assert seen == [("route", pytest.approx(0.1))]


def test_request_trace_accumulates_and_renders_meta():
    clock = FakeClock()
    trace = RequestTrace(clock=clock)
    with trace.span("queue_wait"):
        clock.advance(0.002)
    trace.record("inference", 0.010)
    trace.record("inference", 0.005)  # retried stage accumulates
    trace.update({"coalesce": 0.001})
    clock.advance(0.001)

    meta = trace.as_meta()
    assert meta["stages"]["queue_wait"] == pytest.approx(0.002)
    assert meta["stages"]["inference"] == pytest.approx(0.015)
    assert meta["stages"]["coalesce"] == pytest.approx(0.001)
    assert meta["total_s"] == pytest.approx(0.003)  # only span/advance move the clock
    json.dumps(meta)  # wire-visible object must be JSON-native


def test_request_trace_meta_rounds_to_microseconds():
    trace = RequestTrace(clock=FakeClock())
    trace.record("admission", 0.123456789)
    assert trace.as_meta()["stages"]["admission"] == 0.123457


def test_canonical_stage_names():
    assert STAGES == (
        "admission",
        "queue_wait",
        "coalesce",
        "route",
        "inference",
        "encode",
    )


def test_record_stages_feeds_per_model_histograms():
    registry = MetricsRegistry()
    record_stages(registry, "pecnet", {"queue_wait": 0.002, "inference": 0.01})
    record_stages(registry, "pecnet", {"inference": 0.02})
    snap = registry.snapshot()["histograms"]
    inference = snap[f"{STAGE_METRIC}{{model=pecnet,stage=inference}}"]
    assert inference["count"] == 2
    assert inference["sum"] == pytest.approx(0.03)
    assert snap[f"{STAGE_METRIC}{{model=pecnet,stage=queue_wait}}"]["count"] == 1


# ----------------------------------------------------------------------
# JsonLogger
# ----------------------------------------------------------------------
def test_logger_emits_one_json_line_per_event():
    stream = io.StringIO()
    logger = JsonLogger("test", stream=stream)
    logger.info("server_started", host="127.0.0.1", port=0)
    logger.warning("overloaded", in_flight=9)

    lines = stream.getvalue().splitlines()
    assert len(lines) == 2
    first, second = (json.loads(line) for line in lines)
    assert first["event"] == "server_started"
    assert first["level"] == "info"
    assert first["logger"] == "test"
    assert first["host"] == "127.0.0.1" and first["port"] == 0
    assert "ts" in first and first["ts"].endswith("+00:00")
    assert second["event"] == "overloaded" and second["level"] == "warning"


def test_logger_returns_the_record():
    logger = JsonLogger("test", stream=io.StringIO())
    record = logger.error("flush_error", model="m", error="ValueError: bad")
    assert record["level"] == "error"
    assert record["error"] == "ValueError: bad"


def test_logger_rejects_unknown_level():
    logger = JsonLogger("test", stream=io.StringIO())
    with pytest.raises(ValueError, match="unknown level"):
        logger.log("event", level="critical")


def test_logger_stringifies_non_json_fields():
    stream = io.StringIO()
    JsonLogger("test", stream=stream).info("odd", exc=ValueError("nope"))
    assert json.loads(stream.getvalue())["exc"] == "nope"


def test_logger_default_stream_follows_stderr_swaps(monkeypatch):
    stream = io.StringIO()
    monkeypatch.setattr("sys.stderr", stream)
    JsonLogger("test").info("captured")
    assert json.loads(stream.getvalue())["event"] == "captured"


def test_get_logger_returns_one_instance_per_name():
    a = get_logger("repro.tests.obs")
    b = get_logger("repro.tests.obs")
    assert a is b
    assert get_logger("repro.tests.other") is not a
