"""Tests for the telemetry core: counters, gauges, log-bucket histograms."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_bounds,
)


# ----------------------------------------------------------------------
# log_bounds
# ----------------------------------------------------------------------
def test_log_bounds_covers_range_and_is_log_spaced():
    bounds = log_bounds(1e-3, 10.0, per_decade=4)
    assert bounds[0] == pytest.approx(1e-3)
    assert bounds[-1] >= 10.0
    ratios = np.diff(np.log10(np.asarray(bounds[:-1])))
    assert np.allclose(ratios, 0.25, atol=1e-9)


def test_log_bounds_is_deterministic():
    assert log_bounds(1e-5, 60.0, per_decade=5) == DEFAULT_LATENCY_BOUNDS


@pytest.mark.parametrize(
    "lo, hi, per_decade",
    [(0.0, 1.0, 5), (-1.0, 1.0, 5), (1.0, 1.0, 5), (2.0, 1.0, 5), (1e-3, 1.0, 0)],
)
def test_log_bounds_rejects_bad_specs(lo, hi, per_decade):
    with pytest.raises(ValueError):
        log_bounds(lo, hi, per_decade=per_decade)


# ----------------------------------------------------------------------
# Counter / Gauge
# ----------------------------------------------------------------------
def test_counter_is_monotonic():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    assert counter.snapshot() == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = Gauge()
    gauge.set(3.5)
    gauge.inc()
    gauge.dec(0.5)
    assert gauge.value == pytest.approx(4.0)


# ----------------------------------------------------------------------
# Histogram: bucketing and determinism
# ----------------------------------------------------------------------
def test_histogram_bucket_edges_are_upper_inclusive():
    hist = Histogram(bounds=(1.0, 10.0))
    for value in (0.5, 1.0, 5.0, 10.0, 11.0):
        hist.record(value)
    snap = hist.snapshot()
    # v <= 1.0 -> bucket 0 (two records: 0.5 and the edge 1.0), 1 < v <= 10
    # -> bucket 1, overflow -> bucket 2.
    assert snap["buckets"]["counts"] == [2, 2, 1]
    assert snap["buckets"]["le"] == [1.0, 10.0, "inf"]
    assert snap["count"] == 5
    assert snap["min"] == 0.5 and snap["max"] == 11.0


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram(bounds=())
    with pytest.raises(ValueError):
        Histogram(bounds=(1.0, 1.0))
    with pytest.raises(ValueError):
        Histogram(bounds=(2.0, 1.0))


def test_histogram_snapshot_deterministic_under_concurrent_recording():
    """Same multiset of events, any thread interleaving -> same buckets.

    Eight threads hammer one histogram with disjoint slices of a fixed
    value set; the resulting bucket counts (and count/min/max) must equal a
    single-threaded recording of the same values — the fixed-bound design's
    core promise, and what makes the serving p99 gate reproducible.
    """
    values = np.random.default_rng(0).uniform(1e-5, 1.0, size=4000)
    reference = Histogram()
    for value in values:
        reference.record(value)

    concurrent = Histogram()
    num_threads = 8
    slices = np.array_split(values, num_threads)
    barrier = threading.Barrier(num_threads)

    def work(chunk):
        barrier.wait()  # maximize interleaving
        for value in chunk:
            concurrent.record(value)

    threads = [threading.Thread(target=work, args=(s,)) for s in slices]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    ref, got = reference.snapshot(), concurrent.snapshot()
    assert got["buckets"]["counts"] == ref["buckets"]["counts"]
    assert got["count"] == ref["count"] == len(values)
    assert got["min"] == ref["min"] and got["max"] == ref["max"]
    # Quantiles are a pure function of (buckets, min, max), so they agree too.
    assert got["p99"] == ref["p99"]


# ----------------------------------------------------------------------
# Histogram: quantiles
# ----------------------------------------------------------------------
def test_quantile_empty_histogram_is_zero():
    hist = Histogram()
    for q in (0.0, 0.5, 0.99, 1.0):
        assert hist.quantile(q) == 0.0
    snap = hist.snapshot()
    assert snap["p50"] == snap["p99"] == 0.0
    assert snap["min"] == snap["max"] == 0.0


def test_quantile_single_valued_histogram_is_exact():
    """All records equal -> every quantile reports that exact value.

    This is the min/max clamp at work: however many records land in one
    bucket, interpolation must not spread them across the bucket's width.
    """
    hist = Histogram()
    for _ in range(100):
        hist.record(0.0123)
    for q in (0.0, 0.01, 0.5, 0.99, 1.0):
        assert hist.quantile(q) == pytest.approx(0.0123)


def test_quantile_single_record():
    hist = Histogram()
    hist.record(0.5)
    assert hist.quantile(0.5) == pytest.approx(0.5)
    assert hist.quantile(1.0) == pytest.approx(0.5)


def test_quantile_monotone_and_bounded():
    rng = np.random.default_rng(7)
    hist = Histogram()
    values = rng.uniform(1e-4, 2.0, size=500)
    for value in values:
        hist.record(value)
    qs = [hist.quantile(q) for q in np.linspace(0.0, 1.0, 21)]
    assert all(b >= a for a, b in zip(qs, qs[1:]))
    assert qs[0] >= values.min() - 1e-12
    assert qs[-1] <= values.max() + 1e-12


def test_quantile_interpolation_tracks_true_quantiles():
    rng = np.random.default_rng(3)
    values = rng.uniform(1e-3, 1.0, size=5000)
    hist = Histogram(bounds=log_bounds(1e-4, 10.0, per_decade=20))
    for value in values:
        hist.record(value)
    for q in (0.5, 0.95, 0.99):
        true = float(np.quantile(values, q))
        est = hist.quantile(q)
        # 20 buckets/decade -> bucket width ~12%; interpolation lands well
        # within one bucket of the true quantile.
        assert abs(est - true) / true < 0.15, (q, est, true)


def test_quantile_overflow_bucket_clamps_to_observed_max():
    hist = Histogram(bounds=(1.0,))
    hist.record(5.0)
    hist.record(7.0)  # both overflow
    assert hist.quantile(1.0) == pytest.approx(7.0)
    assert hist.quantile(0.0) == pytest.approx(5.0)
    assert 5.0 <= hist.quantile(0.5) <= 7.0


def test_quantile_rejects_out_of_range():
    hist = Histogram()
    with pytest.raises(ValueError):
        hist.quantile(-0.1)
    with pytest.raises(ValueError):
        hist.quantile(1.1)


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------
def test_registry_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    first = registry.counter("requests", model="a")
    second = registry.counter("requests", model="a")
    assert first is second
    first.inc()
    assert second.value == 1
    # Different labels -> different instrument; label order is irrelevant.
    assert registry.counter("requests", model="b") is not first
    hist_a = registry.histogram("lat", model="a", stage="x")
    hist_b = registry.histogram("lat", stage="x", model="a")
    assert hist_a is hist_b


def test_registry_rejects_kind_collisions_and_empty_names():
    registry = MetricsRegistry()
    registry.counter("thing")
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("thing")
    with pytest.raises(ValueError, match="non-empty"):
        registry.counter("")


def test_registry_snapshot_is_json_ready_and_grouped():
    registry = MetricsRegistry()
    registry.counter("served", model="m").inc(3)
    registry.gauge("depth").set(2)
    registry.histogram("lat", model="m").record(0.01)
    snap = registry.snapshot()
    assert snap["counters"] == {"served{model=m}": 3}
    assert snap["gauges"] == {"depth": 2.0}
    assert snap["histograms"]["lat{model=m}"]["count"] == 1
    json.dumps(snap)  # must not raise: the metrics op ships this verbatim
