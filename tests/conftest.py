"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator; one fresh instance per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session", autouse=True)
def _isolated_dataset_cache(tmp_path_factory):
    """Point the persistent dataset cache at a per-session scratch directory.

    Keeps the suite hermetic (no reads/writes of ``~/.cache/repro``) while
    still exercising the disk layer; individual tests override the directory
    again when they need a private cache.
    """
    from repro.data import registry

    registry.set_cache_dir(tmp_path_factory.mktemp("dataset-cache"))
    yield
    registry.set_cache_dir(None)
