"""Tests for the declarative experiment runner (RunSpec / run_grid)."""

from __future__ import annotations

import pytest

from repro.experiments.runner import (
    GridReport,
    RunSpec,
    execute_spec,
    resolve_jobs,
    run_grid,
    run_grid_report,
)
from tests.experiments.test_harness_and_reporting import MICRO


def micro_grid() -> list[RunSpec]:
    return [
        RunSpec("pecnet", "vanilla", ("eth_ucy",), "sdd", scale=MICRO),
        RunSpec("pecnet", "counter", ("eth_ucy",), "sdd", scale=MICRO),
        RunSpec("lbebm", "vanilla", ("lcas",), "sdd", scale=MICRO, seed=1),
        RunSpec("pecnet", "adaptraj", ("eth_ucy", "lcas"), "sdd", scale=MICRO),
    ]


class TestRunSpec:
    def test_rejects_empty_sources(self):
        with pytest.raises(ValueError, match="source"):
            RunSpec("pecnet", "vanilla", (), "sdd")

    def test_normalizes_sources_to_tuple(self):
        spec = RunSpec("pecnet", "vanilla", ["eth_ucy", "lcas"], "sdd")
        assert spec.sources == ("eth_ucy", "lcas")

    def test_resolve_scale_accepts_names_and_instances(self):
        assert RunSpec("a", "b", ("c",), "d", scale="tiny").resolve_scale().name == "tiny"
        assert RunSpec("a", "b", ("c",), "d", scale=MICRO).resolve_scale() is MICRO

    def test_execute_spec_matches_run_experiment(self):
        from repro.experiments.harness import run_experiment

        spec = micro_grid()[0]
        direct = run_experiment(
            spec.backbone, spec.method, list(spec.sources), spec.target, scale=MICRO
        )
        via_spec = execute_spec(spec)
        assert via_spec.signature() == direct.signature()


class TestResolveJobs:
    def test_explicit_value_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_zero_and_none_mean_all_usable_cpus(self):
        from repro.experiments.runner import usable_cpu_count

        assert resolve_jobs(0) == usable_cpu_count()
        assert resolve_jobs(None) == usable_cpu_count()

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(-1)


class TestRunGrid:
    def test_serial_results_in_spec_order(self):
        grid = micro_grid()
        results = run_grid(grid, jobs=1)
        assert [(r.backbone, r.method, r.sources, r.target) for r in results] == [
            (s.backbone, s.method, s.sources, s.target) for s in grid
        ]

    def test_parallel_bit_identical_to_serial(self):
        """The issue's core determinism contract, on a tiny grid."""
        grid = micro_grid()
        serial = run_grid(grid, jobs=1)
        parallel = run_grid(grid, jobs=2)
        assert [r.signature() for r in serial] == [r.signature() for r in parallel]

    def test_report_metadata(self):
        report = run_grid_report(micro_grid()[:2], jobs=1)
        assert isinstance(report, GridReport)
        assert report.jobs == 1
        assert report.wall_seconds > 0
        meta = report.meta()
        assert meta["num_runs"] == 2 and meta["jobs"] == 1

    def test_workers_capped_by_grid_size(self):
        report = run_grid_report(micro_grid()[:1], jobs=8)
        assert report.jobs == 1  # one run -> serial, no pool

    def test_empty_grid(self):
        assert run_grid([], jobs=4) == []


class TestGridDeclaringGenerators:
    """Tables/figures assemble identical outputs from serial and parallel runs."""

    def test_table2_rows_identical_across_jobs(self):
        from repro.experiments.tables import table2_domain_shift

        serial = table2_domain_shift(MICRO, jobs=1)
        parallel = table2_domain_shift(MICRO, jobs=2)
        assert serial.rows == parallel.rows
        assert parallel.meta["jobs"] == 2
        assert parallel.meta["grid_wall_seconds"] > 0

    def test_figure3_series_identical_across_jobs(self):
        from repro.experiments.figures import figure3_source_domains

        serial = figure3_source_domains(MICRO, backbones=("pecnet",), jobs=1)
        parallel = figure3_source_domains(MICRO, backbones=("pecnet",), jobs=2)
        assert serial.series == parallel.series
