"""Tests for the experiment harness, scales, reporting, and registry caching."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.registry import DataConfig, clear_cache, load_domain_dataset
from repro.experiments.harness import run_experiment
from repro.experiments.reporting import format_table, save_json, save_table
from repro.experiments.scales import SCALES, ExperimentScale, get_scale
from repro.core.config import TrainConfig


MICRO = ExperimentScale(
    name="micro",
    data=DataConfig(num_scenes=1, frames_per_scene=45, stride=8, max_neighbours=4),
    train=TrainConfig(epochs=2, batch_size=16, max_batches_per_epoch=2, eval_samples=1),
)


class TestScales:
    def test_known_scales(self):
        assert set(SCALES) == {"tiny", "small", "paper"}
        assert get_scale("tiny").name == "tiny"

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            get_scale("huge")

    def test_with_seed_changes_both_seeds(self):
        base = get_scale("tiny")
        shifted = base.with_seed(5)
        assert shifted.data.seed == base.data.seed + 5
        assert shifted.train.seed == base.train.seed + 5

    def test_paper_scale_matches_protocol(self):
        paper = get_scale("paper")
        assert paper.train.epochs == 300
        assert paper.train.batch_size == 32
        assert paper.train.eval_samples == 20


class TestRegistryCaching:
    def test_cache_returns_same_object(self):
        clear_cache()
        cfg = DataConfig(num_scenes=1, frames_per_scene=40)
        a = load_domain_dataset("lcas", cfg)
        b = load_domain_dataset("lcas", cfg)
        assert a is b
        clear_cache()
        c = load_domain_dataset("lcas", cfg)
        assert c is not a

    def test_domain_must_be_listed(self):
        with pytest.raises(ValueError, match="missing"):
            load_domain_dataset("lcas", domains=["eth_ucy"])

    def test_cross_process_determinism_seed(self):
        """The generation seed must not depend on Python's randomized
        string hash (regression test)."""
        import zlib

        cfg = DataConfig()
        expected = (cfg.seed * 1000003 + zlib.crc32(b"lcas")) % (2**32)
        clear_cache()
        splits = load_domain_dataset("lcas", cfg)
        from repro.utils.seeding import new_rng
        from repro.sim.generator import generate_scenes
        from repro.data.dataset import extract_samples

        scenes = generate_scenes(
            "lcas", num_scenes=cfg.num_scenes, frames_per_scene=cfg.frames_per_scene,
            rng=new_rng(expected),
        )
        regenerated = []
        for scene in scenes:
            regenerated.extend(
                extract_samples(scene, stride=cfg.stride, max_neighbours=cfg.max_neighbours)
            )
        total = len(splits.train) + len(splits.val) + len(splits.test)
        assert total == len(regenerated)


class TestRunExperiment:
    def test_basic_run(self):
        result = run_experiment(
            "pecnet", "vanilla", sources=["eth_ucy"], target="lcas", scale=MICRO
        )
        assert np.isfinite(result.ade)
        assert np.isfinite(result.fde)
        assert result.sources == ("eth_ucy",)
        assert result.target == "lcas"
        assert result.train_seconds > 0
        assert result.inference_seconds is None

    def test_inference_measured_when_requested(self):
        result = run_experiment(
            "pecnet",
            "vanilla",
            sources=["eth_ucy"],
            target="lcas",
            scale=MICRO,
            measure_inference=True,
        )
        assert result.inference_seconds > 0

    def test_iid_target_in_sources(self):
        result = run_experiment(
            "pecnet", "vanilla", sources=["lcas"], target="lcas", scale=MICRO
        )
        assert np.isfinite(result.ade)

    def test_adaptraj_run(self):
        result = run_experiment(
            "pecnet",
            "adaptraj",
            sources=["eth_ucy", "lcas"],
            target="syi",
            scale=MICRO,
        )
        assert np.isfinite(result.ade)
        assert result.label() == "pecnet-adaptraj"

    def test_requires_sources(self):
        with pytest.raises(ValueError):
            run_experiment("pecnet", "vanilla", sources=[], target="lcas", scale=MICRO)

    def test_deterministic_given_seed(self):
        a = run_experiment(
            "pecnet", "vanilla", sources=["eth_ucy"], target="lcas", scale=MICRO, seed=3
        )
        b = run_experiment(
            "pecnet", "vanilla", sources=["eth_ucy"], target="lcas", scale=MICRO, seed=3
        )
        assert a.ade == pytest.approx(b.ade)
        assert a.fde == pytest.approx(b.fde)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bee"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bee" in lines[2]
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all rows padded to equal width

    def test_save_table_and_json(self, tmp_path):
        path = tmp_path / "out" / "table.txt"
        text = save_table(path, ["x"], [["1"]], title="t")
        assert path.read_text().strip() == text.strip()
        jpath = tmp_path / "out" / "data.json"
        save_json(jpath, {"rows": [1, 2]})
        assert json.loads(jpath.read_text()) == {"rows": [1, 2]}
