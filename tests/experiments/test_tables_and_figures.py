"""Smoke tests for the table/figure generators (micro scale) and chart utils."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import FigureResult, ascii_bar_chart
from repro.experiments.tables import TableResult, table1_dataset_statistics
from tests.experiments.test_harness_and_reporting import MICRO


class TestAsciiBarChart:
    def test_renders_bars_proportionally(self):
        chart = ascii_bar_chart([("a", 1.0), ("bb", 2.0)], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_empty_points(self):
        assert ascii_bar_chart([]) == "(no data)"

    def test_zero_values_guarded(self):
        chart = ascii_bar_chart([("a", 0.0)])
        assert "a" in chart


class TestTableResult:
    def test_text_contains_headers_and_rows(self):
        table = TableResult(
            name="t", title="Title", headers=["x", "y"], rows=[["1", "2"]]
        )
        assert "Title" in table.text
        assert "1" in table.text

    def test_save_writes_txt_and_json(self, tmp_path):
        table = TableResult(
            name="demo", title="T", headers=["x"], rows=[["7"]]
        )
        table.save(str(tmp_path))
        assert (tmp_path / "demo.txt").exists()
        assert (tmp_path / "demo.json").exists()


class TestFigureResult:
    def test_text_includes_all_series(self):
        fig = FigureResult(
            name="f",
            title="Fig",
            series={"A": [("x1", 1.0, 2.0)], "B": [("x1", 0.5, 1.0)]},
        )
        assert "[A]" in fig.text and "[B]" in fig.text

    def test_save(self, tmp_path):
        fig = FigureResult(name="fig", title="T", series={"A": [("x", 1.0, 2.0)]})
        fig.save(str(tmp_path))
        assert (tmp_path / "fig.json").exists()
        assert (tmp_path / "fig.txt").exists()


class TestTableGenerators:
    def test_table1_has_four_domains(self):
        result = table1_dataset_statistics(MICRO)
        assert [row[0] for row in result.rows] == ["eth_ucy", "lcas", "syi", "sdd"]
        assert result.name == "table1_statistics"

    def test_table1_syi_densest(self):
        result = table1_dataset_statistics(MICRO)
        densities = {
            row[0]: float(str(row[2]).split("/")[0]) for row in result.rows
        }
        assert densities["syi"] == max(densities.values())

    def test_figure4_rejects_unknown_parameter(self):
        from repro.experiments.figures import figure4_sensitivity

        with pytest.raises(ValueError, match="no sweep"):
            figure4_sensitivity(MICRO, parameters=("learning_rate",))
