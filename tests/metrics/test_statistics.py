"""Tests for the Table I statistics computation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.trajectory import AgentTrack, Scene
from repro.metrics.statistics import compute_statistics


def constant_velocity_scene(vx=1.0, vy=0.0, n_agents=3, length=30, domain="d"):
    tracks = []
    for i in range(n_agents):
        t = np.arange(length, dtype=np.float64)
        positions = np.stack([vx * t, vy * t + i], axis=1)
        tracks.append(AgentTrack(i, 0, positions))
    return Scene(0, domain, 0.4, tracks)


class TestComputeStatistics:
    def test_velocity_means(self):
        stats = compute_statistics([constant_velocity_scene(vx=2.0, vy=0.5)])
        assert stats.vx_mean == pytest.approx(2.0)
        assert stats.vy_mean == pytest.approx(0.5)
        assert stats.vx_std == pytest.approx(0.0, abs=1e-12)

    def test_zero_acceleration_for_constant_velocity(self):
        stats = compute_statistics([constant_velocity_scene()])
        assert stats.ax_mean == pytest.approx(0.0, abs=1e-12)
        assert stats.ay_mean == pytest.approx(0.0, abs=1e-12)

    def test_sequence_count(self):
        # length 30, window 20 -> 11 window starts, 3 focal agents each.
        stats = compute_statistics([constant_velocity_scene(n_agents=3, length=30)])
        assert stats.num_sequences == 33

    def test_density(self):
        stats = compute_statistics([constant_velocity_scene(n_agents=5)])
        assert stats.num_agents_mean == pytest.approx(5.0)

    def test_rejects_mixed_domains(self):
        scenes = [
            constant_velocity_scene(domain="a"),
            constant_velocity_scene(domain="b"),
        ]
        with pytest.raises(ValueError, match="multiple domains"):
            compute_statistics(scenes)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            compute_statistics([])

    def test_velocity_uses_absolute_values(self):
        stats = compute_statistics([constant_velocity_scene(vx=-1.5)])
        assert stats.vx_mean == pytest.approx(1.5)

    def test_as_row_format(self):
        row = compute_statistics([constant_velocity_scene()]).as_row()
        assert row["domain"] == "d"
        assert "/" in row["Avg/Std v(x)"]


# ----------------------------------------------------------------------
# Statistical-equivalence tier (compiled-inference certification)
# ----------------------------------------------------------------------
from repro.metrics.statistics import (  # noqa: E402
    EquivalenceReport,
    assert_equivalent,
    compare_samples,
    ks_statistic,
)


class TestKsStatistic:
    def test_identical_samples_have_zero_ks(self):
        x = np.random.default_rng(0).standard_normal(500)
        assert ks_statistic(x, x) == 0.0

    def test_disjoint_supports_have_ks_one(self):
        assert ks_statistic(np.zeros(50), np.ones(50)) == 1.0

    def test_same_distribution_small_ks(self):
        rng = np.random.default_rng(1)
        a, b = rng.standard_normal(4000), rng.standard_normal(4000)
        assert ks_statistic(a, b) < 0.05

    def test_shifted_distribution_large_ks(self):
        rng = np.random.default_rng(2)
        a, b = rng.standard_normal(4000), rng.standard_normal(4000) + 1.0
        assert ks_statistic(a, b) > 0.3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ks_statistic(np.array([]), np.ones(3))


class TestCompareSamples:
    def test_exact_tier(self):
        x = np.random.default_rng(3).standard_normal((4, 12, 2))
        report = compare_samples(x, x.copy())
        assert isinstance(report, EquivalenceReport)
        assert report.exact and report.passed
        assert report.max_abs_diff == 0.0 and report.ks == 0.0
        assert report.shape == (4, 12, 2)

    def test_tiny_perturbation_passes_distribution_tier(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((8, 12, 2))
        y = x + 1e-9 * rng.standard_normal(x.shape)
        report = compare_samples(x, y)
        assert not report.exact
        assert report.passed
        assert report.max_abs_diff < 1e-8

    def test_distribution_shift_fails(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((50, 12, 2))
        report = compare_samples(x, x + 1.0)
        assert not report.passed

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            compare_samples(np.zeros((2, 3)), np.zeros((3, 2)))

    def test_as_dict_is_json_friendly(self):
        import json

        report = compare_samples(np.ones((2, 2)), np.ones((2, 2)))
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["exact"] is True and payload["passed"] is True


class TestAssertEquivalent:
    def test_passes_and_returns_report(self):
        x = np.random.default_rng(6).standard_normal(100)
        assert assert_equivalent(x, x).exact

    def test_require_exact_raises_on_epsilon(self):
        x = np.random.default_rng(7).standard_normal(100)
        with pytest.raises(AssertionError, match="not bit-identical"):
            assert_equivalent(x, x + 1e-12, require_exact=True)

    def test_distribution_failure_raises(self):
        x = np.random.default_rng(8).standard_normal(200)
        with pytest.raises(AssertionError, match="statistical equivalence failed"):
            assert_equivalent(x, x + 5.0)
