"""Tests for the Table I statistics computation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.trajectory import AgentTrack, Scene
from repro.metrics.statistics import compute_statistics


def constant_velocity_scene(vx=1.0, vy=0.0, n_agents=3, length=30, domain="d"):
    tracks = []
    for i in range(n_agents):
        t = np.arange(length, dtype=np.float64)
        positions = np.stack([vx * t, vy * t + i], axis=1)
        tracks.append(AgentTrack(i, 0, positions))
    return Scene(0, domain, 0.4, tracks)


class TestComputeStatistics:
    def test_velocity_means(self):
        stats = compute_statistics([constant_velocity_scene(vx=2.0, vy=0.5)])
        assert stats.vx_mean == pytest.approx(2.0)
        assert stats.vy_mean == pytest.approx(0.5)
        assert stats.vx_std == pytest.approx(0.0, abs=1e-12)

    def test_zero_acceleration_for_constant_velocity(self):
        stats = compute_statistics([constant_velocity_scene()])
        assert stats.ax_mean == pytest.approx(0.0, abs=1e-12)
        assert stats.ay_mean == pytest.approx(0.0, abs=1e-12)

    def test_sequence_count(self):
        # length 30, window 20 -> 11 window starts, 3 focal agents each.
        stats = compute_statistics([constant_velocity_scene(n_agents=3, length=30)])
        assert stats.num_sequences == 33

    def test_density(self):
        stats = compute_statistics([constant_velocity_scene(n_agents=5)])
        assert stats.num_agents_mean == pytest.approx(5.0)

    def test_rejects_mixed_domains(self):
        scenes = [
            constant_velocity_scene(domain="a"),
            constant_velocity_scene(domain="b"),
        ]
        with pytest.raises(ValueError, match="multiple domains"):
            compute_statistics(scenes)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            compute_statistics([])

    def test_velocity_uses_absolute_values(self):
        stats = compute_statistics([constant_velocity_scene(vx=-1.5)])
        assert stats.vx_mean == pytest.approx(1.5)

    def test_as_row_format(self):
        row = compute_statistics([constant_velocity_scene()]).as_row()
        assert row["domain"] == "d"
        assert "/" in row["Avg/Std v(x)"]
