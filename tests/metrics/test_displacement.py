"""Tests for ADE/FDE metrics, including property-based invariances."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics import ade, ade_fde, best_of_ade_fde, fde

finite = st.floats(min_value=-10, max_value=10, allow_nan=False, allow_infinity=False)


def trajectories(batch=2, steps=4):
    return arrays(np.float64, (batch, steps, 2), elements=finite)


class TestAdeFde:
    def test_zero_for_identical(self):
        t = np.random.default_rng(0).normal(size=(3, 12, 2))
        assert ade(t, t) == 0.0
        assert fde(t, t) == 0.0

    def test_known_values(self):
        pred = np.zeros((1, 2, 2))
        target = np.array([[[3.0, 4.0], [0.0, 1.0]]])
        assert ade(pred, target) == pytest.approx((5.0 + 1.0) / 2)
        assert fde(pred, target) == pytest.approx(1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="mismatch"):
            ade(np.zeros((1, 2, 2)), np.zeros((1, 3, 2)))
        with pytest.raises(ValueError, match="trajectories"):
            ade(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_ade_fde_consistency(self):
        rng = np.random.default_rng(1)
        pred, target = rng.normal(size=(2, 4, 6, 2))
        a, f = ade_fde(pred, target)
        assert a == pytest.approx(ade(pred, target))
        assert f == pytest.approx(fde(pred, target))

    @settings(max_examples=25, deadline=None)
    @given(trajectories(), trajectories())
    def test_nonnegative(self, pred, target):
        assert ade(pred, target) >= 0.0
        assert fde(pred, target) >= 0.0

    @settings(max_examples=25, deadline=None)
    @given(trajectories(), trajectories(), st.tuples(finite, finite))
    def test_translation_invariance(self, pred, target, shift):
        """Shifting both prediction and target leaves the metrics unchanged."""
        offset = np.array(shift)
        assert ade(pred + offset, target + offset) == pytest.approx(ade(pred, target))
        assert fde(pred + offset, target + offset) == pytest.approx(fde(pred, target))

    @settings(max_examples=25, deadline=None)
    @given(trajectories(), trajectories())
    def test_fde_leq_max_step_error(self, pred, target):
        per_step = np.linalg.norm(pred - target, axis=-1)
        assert fde(pred, target) <= per_step.max(axis=1).mean() + 1e-9


class TestBestOf:
    def test_picks_best_sample_per_agent(self):
        target = np.zeros((2, 3, 2))
        good_for_0 = np.zeros((2, 3, 2))
        good_for_0[1] += 5.0  # bad for agent 1
        good_for_1 = np.zeros((2, 3, 2))
        good_for_1[0] += 5.0  # bad for agent 0
        samples = np.stack([good_for_0, good_for_1])
        best_ade, best_fde = best_of_ade_fde(samples, target)
        assert best_ade == pytest.approx(0.0)
        assert best_fde == pytest.approx(0.0)

    def test_single_sample_matches_plain_metrics(self):
        rng = np.random.default_rng(2)
        pred = rng.normal(size=(4, 6, 2))
        target = rng.normal(size=(4, 6, 2))
        best_ade, best_fde = best_of_ade_fde(pred[None], target)
        assert best_ade == pytest.approx(ade(pred, target))
        assert best_fde == pytest.approx(fde(pred, target))

    def test_more_samples_never_worse(self):
        rng = np.random.default_rng(3)
        target = rng.normal(size=(5, 8, 2))
        samples = rng.normal(size=(6, 5, 8, 2))
        ade_3, _ = best_of_ade_fde(samples[:3], target)
        ade_6, _ = best_of_ade_fde(samples, target)
        assert ade_6 <= ade_3 + 1e-12

    def test_fde_reported_for_min_ade_sample(self):
        """FDE follows the ADE-optimal sample (PECNet protocol), so it can
        exceed the FDE-optimal value."""
        target = np.zeros((1, 2, 2))
        # Sample 0: great ADE, bad FDE.  Sample 1: bad ADE, perfect FDE.
        s0 = np.array([[[0.0, 0.0], [0.0, 1.0]]])
        s1 = np.array([[[9.0, 0.0], [0.0, 0.0]]])
        _, best_fde = best_of_ade_fde(np.stack([s0, s1]), target)
        assert best_fde == pytest.approx(1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            best_of_ade_fde(np.zeros((2, 3, 2)), np.zeros((2, 3, 2)))
        with pytest.raises(ValueError):
            best_of_ade_fde(np.zeros((1, 2, 3, 2)), np.zeros((2, 4, 2)))
