"""Every checker catches its seeded violations — and stays silent on the
paired clean fixture.

The fixtures under ``tests/lint/fixtures/<case>/{violating,clean}`` are
mini-repos (laid out with real ``src/repro/...`` paths, because several
checkers scope by path); the repo-wide lint run excludes them, so they can
violate every invariant on purpose.  Deleting any satellite fix/pragma in
the real tree is equivalent to one of these violating fixtures — this file
is the proof that the lint job would fail.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import run_lint

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def lint(case: str, kind: str, select: set[str] | None = None):
    return run_lint(str(FIXTURES / case / kind), select=select)


#: case → (checker code, expected (file, line) anchors in the violating
#: fixture).  Lines pin the findings to the seeded violations exactly.
EXPECTED = {
    "det": (
        "REP-DET",
        [
            ("src/repro/experiments/bad_import.py", 1),  # from random import
            ("src/repro/experiments/bad_import.py", 2),  # from time import
            ("src/repro/sim/bad.py", 9),  # np.random.rand
            ("src/repro/sim/bad.py", 10),  # random.shuffle
            ("src/repro/sim/bad.py", 11),  # time.time in sim
        ],
    ),
    "exc": (
        "REP-EXC",
        [
            ("src/repro/serve/bad.py", 4),  # except Exception: pass
            ("src/repro/serve/bad.py", 11),  # bare except: return None
            ("src/repro/serve/bad.py", 19),  # except BaseException: (no use)
        ],
    ),
    "grad": (
        "REP-GRAD",
        [
            ("src/repro/serve/bad.py", 1),  # import repro.nn.optim
            ("src/repro/serve/bad.py", 2),  # from repro.core.trainer import
            ("src/repro/serve/bad.py", 3),  # from repro.nn import Adam
            ("src/repro/serve/bad.py", 7),  # .backward()
            ("src/repro/serve/bad.py", 9),  # .zero_grad()
            ("src/repro/serve/bad.py", 10),  # .requires_grad = True
            ("src/repro/serve/bad.py", 11),  # requires_grad=True kwarg
        ],
    ),
    "cyc": (
        "REP-CYC",
        [
            ("src/repro/alpha.py", 1),  # alpha -> beta -> alpha
        ],
    ),
    "net": (
        "REP-NET",
        [
            ("src/repro/serve/cli.py", 2),  # add_argument --port default=9999
            ("src/repro/serve/cli.py", 6),  # port = 8501 (not a constant)
            ("tests/test_conn.py", 5),  # ("127.0.0.1", 9000)
            ("tests/test_conn.py", 9),  # port=8080 kwarg
            ("tests/test_conn.py", 12),  # PROXY_PORT = 4000 in tests
        ],
    ),
    "drift": (
        "REP-DRIFT",
        [
            ("docs/observability.md", 5),  # documented instrument missing
            ("docs/serving.md", 10),  # documented error code missing
            ("src/repro/obs/metrics_use.py", 2),  # undocumented instrument
            ("src/repro/serve/protocol.py", 2),  # undocumented E_MYSTERY
            ("src/repro/serve/protocol.py", 4),  # undocumented mystery_op
        ],
    ),
    "doc": (
        "REP-DOC",
        [
            ("docs/a.md", 3),  # broken anchor
            ("docs/a.md", 3),  # broken link
        ],
    ),
}


@pytest.mark.parametrize("case", sorted(EXPECTED))
def test_violating_fixture_is_caught(case):
    code, anchors = EXPECTED[case]
    findings = lint(case, "violating")
    assert findings, f"{case}/violating produced no findings"
    assert all(f.code == code for f in findings)
    assert [(f.file, f.line) for f in findings] == sorted(anchors)


@pytest.mark.parametrize("case", sorted(EXPECTED))
def test_clean_fixture_passes(case):
    assert lint(case, "clean") == []


def test_select_restricts_to_one_checker():
    # The grad fixture also has no REP-DET violations; selecting REP-DET
    # must return nothing even though REP-GRAD would fire.
    assert lint("grad", "violating", select={"REP-DET"}) == []
    findings = lint("grad", "violating", select={"REP-GRAD"})
    assert findings and all(f.code == "REP-GRAD" for f in findings)


def test_cycle_message_names_the_cycle():
    (finding,) = lint("cyc", "violating")
    assert finding.message == (
        "import cycle: repro.alpha -> repro.beta -> repro.alpha"
    )


def test_package_reexport_is_not_a_cycle():
    # ``from repro.pkg import two`` inside repro/pkg/one.py resolves to the
    # sibling submodule, not the package __init__ — the re-export pattern
    # used all over src/repro must never read as a cycle.
    assert lint("cyc", "clean", select={"REP-CYC"}) == []


def test_seeding_module_is_exempt_from_det():
    # det/clean contains np.random.seed + random.seed inside
    # src/repro/utils/seeding.py — the one allowed module.
    assert lint("det", "clean", select={"REP-DET"}) == []


def test_training_outside_serve_is_exempt_from_grad():
    # grad/clean has .backward() + Adam in src/repro/core/ — fine there.
    assert lint("grad", "clean", select={"REP-GRAD"}) == []
