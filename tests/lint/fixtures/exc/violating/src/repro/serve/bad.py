def swallow_pass():
    try:
        risky()
    except Exception:
        pass


def swallow_bare():
    try:
        risky()
    except:
        return None


def swallow_base(xs):
    for x in xs:
        try:
            risky(x)
        except BaseException:
            x = 0


def risky(x=None):
    raise RuntimeError(x)
