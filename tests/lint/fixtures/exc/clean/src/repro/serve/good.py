log = None


def reraises():
    try:
        risky()
    except BaseException:
        raise


def logs():
    try:
        risky()
    except Exception as error:
        log.warning("flush_error", error=str(error))


def counts(stats):
    try:
        risky()
    except Exception:
        stats.errors += 1


def records(errors):
    try:
        risky()
    except BaseException as error:
        errors.append(error)


def narrow_is_fine():
    try:
        risky()
    except ValueError:
        pass


def risky():
    raise RuntimeError
