import repro.nn.optim
from repro.core.trainer import Trainer
from repro.nn import Adam


def fit(model, loss, param):
    loss.backward()
    opt = Adam(model.parameters())
    opt.zero_grad()
    param.requires_grad = True
    return model.forward(x=1, requires_grad=True)
