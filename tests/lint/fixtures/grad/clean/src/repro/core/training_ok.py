"""Training code outside repro.serve is exempt from REP-GRAD."""
from repro.nn import Adam


def fit(model, loss):
    loss.backward()
    opt = Adam(model.parameters())
    opt.zero_grad()
