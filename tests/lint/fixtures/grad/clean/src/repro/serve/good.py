from repro.nn import Tensor, inference_mode


def predict(model, batch):
    with inference_mode(model):
        return model.forward(batch)
