"""The one module allowed to touch global RNG state."""
import random

import numpy as np


def seed_everything(seed):
    random.seed(seed)
    np.random.seed(seed % (2**32))
