"""Wall-clock reads are fine outside signature-relevant modules."""
import time


def latency():
    return time.perf_counter()
