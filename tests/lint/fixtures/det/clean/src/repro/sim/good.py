import numpy as np


def sample(rng, n):
    return rng.normal(size=n)


def make_rng(seed):
    return np.random.default_rng(seed)
