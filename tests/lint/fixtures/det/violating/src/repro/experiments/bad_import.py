from random import shuffle
from time import perf_counter


def run(xs):
    shuffle(xs)
    return perf_counter()
