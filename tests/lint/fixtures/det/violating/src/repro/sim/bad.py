"""Violates REP-DET three ways."""
import random
import time

import numpy as np


def sample(n):
    noise = np.random.rand(n)        # line 9: module-level numpy RNG
    random.shuffle(list(noise))      # line 10: global stdlib RNG
    return time.time()               # line 11: wall-clock in sim
