import socket


def connect():
    return socket.create_connection(("127.0.0.1", 9000))


def serve(server):
    server.bind(port=8080)


PROXY_PORT = 4000
