def build(parser):
    parser.add_argument("--port", type=int, default=9999)


def run(app):
    port = 8501
    app.listen(port)
