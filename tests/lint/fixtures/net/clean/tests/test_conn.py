import socket


def connect(port):
    return socket.create_connection(("127.0.0.1", port))


def serve(server):
    server.bind(port=0)
