DEFAULT_PORT = 8707  # the designated constant


def build(parser):
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
