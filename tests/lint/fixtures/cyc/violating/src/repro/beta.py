from repro import alpha
