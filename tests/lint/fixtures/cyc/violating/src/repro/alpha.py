import repro.beta
