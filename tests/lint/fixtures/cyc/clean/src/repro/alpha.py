import repro.beta
