from repro.pkg import two
