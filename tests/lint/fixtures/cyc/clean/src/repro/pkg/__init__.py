from repro.pkg import one, two
