import numpy as np


def sample(n):
    return np.random.rand(n)  # lint: disable=REP-DET
