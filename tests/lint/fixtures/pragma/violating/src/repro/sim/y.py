import numpy as np


def sample(n):
    return np.random.rand(n)  # lint: disable=NOT-A-CODE(made up)
