import numpy as np
import time


def sample(n):
    return np.random.rand(n)  # lint: disable=REP-DET(fixture: justified suppression keeps this silent)


def stamp():
    # Reasons may contain parentheses, e.g. signature() exclusions.
    return time.time()  # lint: disable=REP-DET(meta only; signature() excludes wall-clock (see docs))
