METRIC = "serve_latency_seconds"


def instrument(registry):
    registry.counter("serve_requests").inc()
    registry.histogram(METRIC).record(0.1)
