E_BAD_REQUEST = "bad_request"

OPERATIONS = ("predict",)
WORKER_OPERATIONS = ("worker_chunk",)
