def instrument(registry):
    registry.counter("serve_ghost_requests").inc()
