E_BAD_REQUEST = "bad_request"
E_MYSTERY = "mystery_error"

OPERATIONS = ("predict", "mystery_op")
