"""Keep pytest out of the fixture mini-repos.

The files under ``fixtures/`` deliberately violate repo invariants (some
mimic test modules, one has a syntax error) — they are lint *inputs*, not
tests, and must never be collected.
"""

collect_ignore = ["fixtures"]
