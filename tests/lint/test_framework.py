"""Framework semantics: pragmas, baseline, ordering, JSON output, exit codes.

Uses the ``pragma`` fixture pair plus small throwaway repos built in tmp_path
so the CLI contract (exit 0/1/2, ``--write-baseline`` round trip, ``--strict``
stale-entry failure) is pinned independently of the real tree.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import Finding, load_baseline, run_lint, split_baseline, write_baseline
from repro.lint.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _make_repo(tmp_path: Path, body: str) -> Path:
    """A one-file repo whose src/repro/sim module contains ``body``."""
    root = tmp_path / "repo"
    mod = root / "src" / "repro" / "sim"
    mod.mkdir(parents=True)
    (root / "src" / "repro" / "__init__.py").write_text("")
    (mod / "__init__.py").write_text("")
    (mod / "mod.py").write_text(body)
    return root


# ---------------------------------------------------------------- pragmas


class TestPragmas:
    def test_justified_pragma_suppresses(self):
        findings = run_lint(str(FIXTURES / "pragma" / "clean"))
        assert findings == []

    def test_missing_reason_and_unknown_code_are_flagged(self):
        findings = run_lint(str(FIXTURES / "pragma" / "violating"))
        by_code = {}
        for finding in findings:
            by_code.setdefault(finding.code, []).append(finding)
        # A reasonless pragma does NOT suppress: the REP-DET finding
        # survives alongside the REP-PRAGMA complaint.
        assert len(by_code["REP-DET"]) == 2
        assert len(by_code["REP-PRAGMA"]) == 2
        messages = " | ".join(f.message for f in by_code["REP-PRAGMA"])
        assert "justification" in messages
        assert "NOT-A-CODE" in messages

    def test_pragma_reason_may_contain_parentheses(self, tmp_path):
        root = _make_repo(
            tmp_path,
            "import numpy as np\n"
            "x = np.random.rand()  "
            "# lint: disable=REP-DET(seed comes from cfg.seed() upstream)\n",
        )
        assert run_lint(str(root)) == []

    def test_pragma_in_string_literal_is_inert(self, tmp_path):
        # Only real COMMENT tokens count — a string that merely contains the
        # pragma text must neither suppress nor be validated.
        root = _make_repo(
            tmp_path,
            "import numpy as np\n"
            's = "lint: disable=REP-DET(not a comment)"\n'
            "x = np.random.rand()\n",
        )
        findings = run_lint(str(root))
        assert [f.code for f in findings] == ["REP-DET"]

    def test_syntax_error_reported_as_rep_ast(self, tmp_path):
        root = _make_repo(tmp_path, "def broken(:\n")
        findings = run_lint(str(root))
        assert [f.code for f in findings] == ["REP-AST"]


# ---------------------------------------------------------------- baseline


class TestBaseline:
    def _findings(self):
        return run_lint(str(FIXTURES / "exc" / "violating"))

    def test_round_trip_and_split(self, tmp_path):
        findings = self._findings()
        path = tmp_path / "baseline.json"
        write_baseline(str(path), findings)
        baseline = load_baseline(str(path))
        assert len(baseline) == len(findings)
        new, grandfathered, stale = split_baseline(findings, baseline)
        assert new == [] and stale == []
        assert grandfathered == findings

    def test_baseline_ignores_line_drift(self):
        findings = self._findings()
        # Simulate the file shifting by 100 lines: same (file, code,
        # message) key still matches.
        drifted = [
            Finding(f.file, f.line + 100, f.code, f.message) for f in findings
        ]
        baseline = [f.baseline_key() for f in findings]
        new, grandfathered, stale = split_baseline(drifted, baseline)
        assert new == [] and stale == [] and len(grandfathered) == len(findings)

    def test_stale_entries_detected(self):
        findings = self._findings()
        ghost = ("src/repro/serve/gone.py", "REP-EXC", "no longer exists")
        baseline = [findings[0].baseline_key(), ghost]
        new, grandfathered, stale = split_baseline(findings, baseline)
        assert stale == [ghost]
        assert grandfathered == [findings[0]]
        assert len(new) == len(findings) - 1

    def test_bad_baseline_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        try:
            load_baseline(str(path))
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError on unknown version")


# ---------------------------------------------------------------- ordering


def test_findings_are_sorted_and_deduplicated():
    findings = run_lint(str(FIXTURES / "net" / "violating"))
    keys = [(f.file, f.line, f.code, f.message) for f in findings]
    assert keys == sorted(keys)
    assert len(keys) == len(set(keys))


def test_repeated_runs_are_deterministic():
    a = run_lint(str(FIXTURES / "drift" / "violating"))
    b = run_lint(str(FIXTURES / "drift" / "violating"))
    assert a == b


# ---------------------------------------------------------------- CLI


class TestCli:
    def test_exit_zero_on_clean_tree(self, capsys):
        rc = main(["--root", str(FIXTURES / "exc" / "clean"), "--no-baseline"])
        assert rc == 0
        assert "OK: no new findings" in capsys.readouterr().out

    def test_exit_one_on_findings(self, capsys):
        rc = main(["--root", str(FIXTURES / "exc" / "violating"), "--no-baseline"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REP-EXC" in out and "3 finding(s)" in out

    def test_exit_two_on_unknown_code(self, capsys):
        rc = main(["--root", str(FIXTURES / "exc" / "clean"), "--select", "BOGUS"])
        assert rc == 2
        assert "unknown checker code" in capsys.readouterr().err

    def test_exit_two_on_missing_root(self, capsys):
        rc = main(["--root", "/nonexistent/nowhere"])
        assert rc == 2

    def test_json_output_schema(self, capsys):
        rc = main(
            [
                "--root",
                str(FIXTURES / "exc" / "violating"),
                "--no-baseline",
                "--json",
            ]
        )
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["counts"] == {"REP-EXC": 3}
        assert payload["baselined"] == [] and payload["stale_baseline"] == []
        for finding in payload["findings"]:
            assert set(finding) == {"file", "line", "code", "message"}
            assert finding["code"] == "REP-EXC"

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        root = str(FIXTURES / "exc" / "violating")
        baseline = str(tmp_path / "bl.json")
        assert main(["--root", root, "--baseline", baseline, "--write-baseline"]) == 0
        capsys.readouterr()
        # Every finding is now grandfathered: lint passes, strict included.
        assert main(["--root", root, "--baseline", baseline, "--strict"]) == 0
        assert "3 baselined" in capsys.readouterr().out

    def test_strict_fails_on_stale_baseline(self, tmp_path, capsys):
        root = str(FIXTURES / "exc" / "clean")
        baseline = tmp_path / "bl.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "findings": [
                        {"file": "gone.py", "code": "REP-EXC", "message": "x"}
                    ],
                }
            )
        )
        # Non-strict tolerates staleness; strict turns it into a failure.
        assert main(["--root", root, "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["--root", root, "--baseline", str(baseline), "--strict"]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_list_checkers(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for code in (
            "REP-DET",
            "REP-EXC",
            "REP-GRAD",
            "REP-CYC",
            "REP-NET",
            "REP-DRIFT",
            "REP-DOC",
        ):
            assert code in out
