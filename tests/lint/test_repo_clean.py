"""Tier-1 gate: the real repository lints clean.

This is the test CI's ``lint`` job duplicates from the shell
(``python -m repro.lint --strict``).  If it fails, either fix the violation
or — when the code is genuinely right — add a justified inline pragma
(``# lint: disable=CODE(reason)``); the baseline stays empty by policy
(see docs/lint.md).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import run_lint
from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_has_no_findings():
    findings = run_lint(str(REPO_ROOT))
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)


def test_cli_strict_passes_on_repo(capsys):
    assert main(["--root", str(REPO_ROOT), "--strict"]) == 0
    assert "OK: no new findings" in capsys.readouterr().out


def test_committed_baseline_is_empty():
    # Policy: new violations get fixed or pragma'd, never baselined.  The
    # baseline mechanism exists for third-party adopters / emergencies.
    payload = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
    assert payload == {"findings": [], "version": 1}
