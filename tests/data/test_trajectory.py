"""Tests for AgentTrack and Scene containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.trajectory import AgentTrack, Scene


def straight_track(agent_id=0, start=0, length=10, speed=1.0):
    t = np.arange(length, dtype=np.float64)
    return AgentTrack(agent_id, start, np.stack([speed * t, np.zeros(length)], axis=1))


class TestAgentTrack:
    def test_validates_shape(self):
        with pytest.raises(ValueError, match=r"\[T, 2\]"):
            AgentTrack(0, 0, np.zeros((5, 3)))

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError, match="start_frame"):
            AgentTrack(0, -1, np.zeros((5, 2)))

    def test_frame_accounting(self):
        track = straight_track(start=3, length=7)
        assert track.num_frames == 7
        assert track.end_frame == 10
        assert track.covers(3, 10)
        assert not track.covers(2, 10)
        assert not track.covers(3, 11)

    def test_slice_frames(self):
        track = straight_track(start=2, length=8)
        window = track.slice_frames(4, 7)
        np.testing.assert_allclose(window[:, 0], [2.0, 3.0, 4.0])

    def test_slice_outside_raises(self):
        track = straight_track(start=2, length=8)
        with pytest.raises(ValueError, match="covers"):
            track.slice_frames(0, 5)

    def test_velocities_and_accelerations(self):
        track = straight_track(length=5, speed=2.0)
        np.testing.assert_allclose(track.velocities(dt=1.0)[:, 0], 2.0)
        np.testing.assert_allclose(track.accelerations(dt=1.0), 0.0)

    def test_velocity_dt_scaling(self):
        track = straight_track(length=5, speed=2.0)
        np.testing.assert_allclose(track.velocities(dt=0.4)[:, 0], 5.0)


class TestScene:
    def make_scene(self):
        return Scene(
            scene_id=0,
            domain="eth_ucy",
            dt=0.4,
            tracks=[
                straight_track(agent_id=0, start=0, length=10),
                straight_track(agent_id=1, start=5, length=10),
                straight_track(agent_id=2, start=8, length=4),
            ],
        )

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            Scene(0, "x", 0.4, [straight_track(0), straight_track(0)])

    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError, match="dt"):
            Scene(0, "x", 0.0, [])

    def test_num_frames_is_max_end(self):
        assert self.make_scene().num_frames == 15

    def test_tracks_covering(self):
        scene = self.make_scene()
        ids = {t.agent_id for t in scene.tracks_covering(5, 10)}
        assert ids == {0, 1}

    def test_agents_at(self):
        scene = self.make_scene()
        assert {t.agent_id for t in scene.agents_at(9)} == {0, 1, 2}
        assert {t.agent_id for t in scene.agents_at(0)} == {0}

    def test_positions_at(self):
        scene = self.make_scene()
        positions = scene.positions_at(6)
        assert positions.shape == (2, 2)

    def test_positions_at_empty_frame(self):
        scene = Scene(0, "x", 0.4, [straight_track(start=5, length=3)])
        assert scene.positions_at(0).shape == (0, 2)
