"""Tests for the persistent on-disk dataset cache in ``repro.data.registry``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import registry
from repro.data.registry import (
    DataConfig,
    cache_stats,
    clear_cache,
    load_domain_dataset,
    reset_cache_stats,
)

CFG = DataConfig(num_scenes=1, frames_per_scene=45, stride=8, max_neighbours=4)


@pytest.fixture
def private_cache(tmp_path):
    """A fresh disk cache directory with empty in-process state and stats."""
    previous = registry.get_cache_dir()
    registry.set_cache_dir(tmp_path)
    clear_cache()
    reset_cache_stats()
    yield tmp_path
    registry.set_cache_dir(previous)
    clear_cache()
    reset_cache_stats()


def assert_splits_equal(a, b) -> None:
    for split_a, split_b in ((a.train, b.train), (a.val, b.val), (a.test, b.test)):
        assert len(split_a) == len(split_b)
        assert split_a.domains == split_b.domains
        for sa, sb in zip(split_a.samples, split_b.samples):
            assert np.array_equal(sa.obs, sb.obs)
            assert np.array_equal(sa.future, sb.future)
            assert np.array_equal(sa.neighbours, sb.neighbours)
            assert (sa.domain, sa.scene_id, sa.frame) == (sb.domain, sb.scene_id, sb.frame)


class TestRoundTrip:
    def test_hit_after_simulated_process_restart(self, private_cache):
        generated = load_domain_dataset("lcas", CFG)
        assert cache_stats["misses"] == 1
        assert list(private_cache.glob("lcas-*.npz"))

        # A new process has an empty in-process layer but the same disk.
        clear_cache()
        loaded = load_domain_dataset("lcas", CFG)
        assert cache_stats["disk_hits"] == 1
        assert cache_stats["misses"] == 1  # no re-simulation
        assert loaded is not generated
        assert_splits_equal(loaded, generated)

    def test_disk_hit_performs_zero_simulation(self, private_cache, monkeypatch):
        load_domain_dataset("lcas", CFG)
        clear_cache()

        def explode(*args, **kwargs):
            raise AssertionError("disk hit must not re-simulate scenes")

        monkeypatch.setattr(registry, "generate_scenes", explode)
        load_domain_dataset("lcas", CFG)

    def test_empty_split_round_trips(self, private_cache):
        # A tiny recording can leave the val/test splits empty; the pack
        # format must survive that.
        tiny = DataConfig(num_scenes=1, frames_per_scene=25, stride=8)
        generated = load_domain_dataset("lcas", tiny)
        clear_cache()
        loaded = load_domain_dataset("lcas", tiny)
        assert_splits_equal(loaded, generated)

    def test_corrupt_entry_regenerates(self, private_cache):
        load_domain_dataset("lcas", CFG)
        path = next(private_cache.glob("lcas-*.npz"))
        path.write_bytes(b"not a zip archive")
        clear_cache()
        reset_cache_stats()
        loaded = load_domain_dataset("lcas", CFG)
        assert cache_stats["misses"] == 1  # regenerated, not crashed
        assert len(loaded.train) > 0


class TestKeying:
    @pytest.mark.parametrize(
        "other",
        [
            DataConfig(num_scenes=2, frames_per_scene=45, stride=8, max_neighbours=4),
            DataConfig(num_scenes=1, frames_per_scene=50, stride=8, max_neighbours=4),
            DataConfig(num_scenes=1, frames_per_scene=45, stride=4, max_neighbours=4),
            DataConfig(num_scenes=1, frames_per_scene=45, stride=8, max_neighbours=6),
            DataConfig(num_scenes=1, frames_per_scene=45, stride=8, max_neighbours=4, obs_len=6),
            DataConfig(num_scenes=1, frames_per_scene=45, stride=8, max_neighbours=4, pred_len=10),
            DataConfig(num_scenes=1, frames_per_scene=45, stride=8, max_neighbours=4, seed=8),
        ],
        ids=["num_scenes", "frames", "stride", "max_neighbours", "obs_len", "pred_len", "seed"],
    )
    def test_any_config_field_changes_the_key(self, other):
        assert registry._cache_key("lcas", ("lcas",), CFG) != registry._cache_key(
            "lcas", ("lcas",), other
        )

    def test_domain_and_domain_list_change_the_key(self):
        domains = tuple(["eth_ucy", "lcas"])
        assert registry._cache_key("lcas", domains, CFG) != registry._cache_key(
            "eth_ucy", domains, CFG
        )
        assert registry._cache_key("lcas", domains, CFG) != registry._cache_key(
            "lcas", ("lcas", "eth_ucy"), CFG
        )

    def test_different_config_misses_on_disk(self, private_cache):
        load_domain_dataset("lcas", CFG)
        clear_cache()
        reset_cache_stats()
        load_domain_dataset("lcas", DataConfig(num_scenes=1, frames_per_scene=45, seed=8))
        assert cache_stats["misses"] == 1
        assert cache_stats["disk_hits"] == 0


class TestDisabledCache:
    def test_none_dir_disables_disk_layer(self, tmp_path):
        previous = registry.get_cache_dir()
        registry.set_cache_dir(None)
        clear_cache()
        reset_cache_stats()
        try:
            load_domain_dataset("lcas", CFG)
            clear_cache()
            load_domain_dataset("lcas", CFG)
            assert cache_stats["misses"] == 2  # simulated twice, no disk
        finally:
            registry.set_cache_dir(previous)
            clear_cache()

    def test_env_off_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_CACHE", "0")
        assert registry.default_cache_dir() is None
        monkeypatch.setenv("REPRO_DATA_CACHE", "off")
        assert registry.default_cache_dir() is None
        monkeypatch.setenv("REPRO_DATA_CACHE", "/some/dir")
        assert registry.default_cache_dir() == "/some/dir"


class TestTableLevelContract:
    def test_second_table_invocation_performs_zero_simulation(
        self, private_cache, monkeypatch
    ):
        """Acceptance gate: rerunning a table at the same scale never simulates."""
        from repro.experiments.tables import table2_domain_shift
        from tests.experiments.test_harness_and_reporting import MICRO

        first = table2_domain_shift(MICRO)

        # Fresh process: in-memory gone, disk remains.
        clear_cache()
        monkeypatch.setattr(
            registry,
            "generate_scenes",
            lambda *a, **k: (_ for _ in ()).throw(
                AssertionError("second table invocation must not simulate")
            ),
        )
        second = table2_domain_shift(MICRO)
        assert first.rows == second.rows
