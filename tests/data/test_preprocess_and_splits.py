"""Tests for resampling, coordinate conversion, and chronological splits."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import TrajectoryDataset, TrajectorySample
from repro.data.preprocess import pixels_to_world, resample_scene, resample_track
from repro.data.splits import chronological_split
from repro.data.trajectory import AgentTrack, Scene


class TestResampleTrack:
    def test_identity_rate(self):
        track = AgentTrack(0, 0, np.stack([np.arange(5.0), np.zeros(5)], axis=1))
        out = resample_track(track, source_dt=0.4, target_dt=0.4)
        np.testing.assert_allclose(out.positions, track.positions)

    def test_downsample_by_interpolation(self):
        # 1 Hz positions x = t; resample to 0.5s -> x = 0.5 * frame.
        track = AgentTrack(0, 0, np.stack([np.arange(5.0), np.zeros(5)], axis=1))
        out = resample_track(track, source_dt=1.0, target_dt=0.5)
        np.testing.assert_allclose(out.positions[:, 0], np.arange(9) * 0.5)

    def test_upsample_high_rate_source(self):
        # 30 Hz source (like SDD) resampled to 0.4 s.
        n = 121
        track = AgentTrack(0, 0, np.stack([np.arange(n) / 30.0, np.zeros(n)], axis=1))
        out = resample_track(track, source_dt=1 / 30.0, target_dt=0.4)
        assert out.num_frames == 11  # 4 seconds span -> frames 0..10
        np.testing.assert_allclose(out.positions[:, 0], np.arange(11) * 0.4, atol=1e-9)

    def test_offset_start_lands_on_grid(self):
        track = AgentTrack(0, 3, np.stack([np.arange(10.0), np.ones(10)], axis=1))
        out = resample_track(track, source_dt=1.0, target_dt=0.4)
        # Start time 3.0 s -> grid frame ceil(3.0/0.4) = 8 (t = 3.2 s).
        assert out.start_frame == 8
        np.testing.assert_allclose(out.positions[0, 0], 0.2, atol=1e-9)

    def test_too_short_track_keeps_single_point(self):
        track = AgentTrack(0, 1, np.array([[1.0, 2.0], [1.1, 2.0]]))
        out = resample_track(track, source_dt=0.1, target_dt=10.0)
        assert out.num_frames == 1

    def test_rejects_bad_rates(self):
        track = AgentTrack(0, 0, np.zeros((3, 2)))
        with pytest.raises(ValueError):
            resample_track(track, source_dt=0.0)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.05, max_value=1.0))
    def test_linear_motion_preserved(self, source_dt):
        """Resampling a constant-velocity track keeps it constant-velocity."""
        n = 50
        positions = np.stack([np.arange(n) * 0.3, np.arange(n) * -0.1], axis=1)
        track = AgentTrack(0, 0, positions)
        out = resample_track(track, source_dt=source_dt, target_dt=0.4)
        if out.num_frames >= 3:
            v = np.diff(out.positions, axis=0)
            np.testing.assert_allclose(v, np.broadcast_to(v[0], v.shape), atol=1e-6)


class TestResampleScene:
    def test_scene_rate_converted(self):
        tracks = [
            AgentTrack(0, 0, np.stack([np.arange(20.0), np.zeros(20)], axis=1))
        ]
        scene = Scene(0, "sdd", dt=0.1, tracks=tracks)
        out = resample_scene(scene)
        assert out.dt == pytest.approx(0.4)
        assert out.tracks[0].num_frames < 20

    def test_noop_when_already_target(self):
        scene = Scene(0, "x", dt=0.4, tracks=[])
        assert resample_scene(scene) is scene


class TestPixelsToWorld:
    def test_scalar_scale(self):
        out = pixels_to_world(np.array([[100.0, 200.0]]), 0.05)
        np.testing.assert_allclose(out, [[5.0, 10.0]])

    def test_per_axis_scale_and_origin(self):
        out = pixels_to_world(
            np.array([[110.0, 220.0]]), (0.1, 0.2), origin_px=(10.0, 20.0)
        )
        np.testing.assert_allclose(out, [[10.0, 40.0]])

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            pixels_to_world(np.zeros((1, 2)), 0.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            pixels_to_world(np.zeros((1, 2)), (1.0, 2.0, 3.0))


def sample_at(frame, scene_id=0, domain="a"):
    return TrajectorySample(
        obs=np.zeros((8, 2)),
        future=np.zeros((12, 2)),
        neighbours=np.zeros((0, 8, 2)),
        domain=domain,
        scene_id=scene_id,
        frame=frame,
    )


class TestChronologicalSplit:
    def test_ratio_sizes(self):
        ds = TrajectoryDataset([sample_at(i) for i in range(10)])
        splits = chronological_split(ds)
        assert splits.sizes() == (6, 2, 2)

    def test_chronology_strict(self):
        ds = TrajectoryDataset([sample_at(i) for i in np.random.permutation(20)])
        splits = chronological_split(ds)
        max_train = max(s.frame for s in splits.train.samples)
        min_val = min(s.frame for s in splits.val.samples)
        min_test = min(s.frame for s in splits.test.samples)
        assert max_train < min_val
        assert max(s.frame for s in splits.val.samples) < min_test

    def test_per_domain_split(self):
        samples = [sample_at(i, domain="a") for i in range(10)] + [
            sample_at(i, domain="b") for i in range(5)
        ]
        splits = chronological_split(TrajectoryDataset(samples))
        assert splits.train.domain_counts() == {"a": 6, "b": 3}
        assert splits.test.domain_counts()["b"] >= 1

    def test_scene_id_orders_before_frame(self):
        samples = [sample_at(5, scene_id=1), sample_at(0, scene_id=2)]
        ds = TrajectoryDataset(samples)
        splits = chronological_split(ds, ratios=(0.5, 0.0, 0.5))
        assert splits.train.samples[0].scene_id == 1

    def test_invalid_ratios(self):
        ds = TrajectoryDataset([sample_at(0)])
        with pytest.raises(ValueError):
            chronological_split(ds, ratios=(0.5, 0.5))
        with pytest.raises(ValueError):
            chronological_split(ds, ratios=(0.9, 0.2, -0.1))
