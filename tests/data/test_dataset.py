"""Tests for windowing, TrajectoryDataset, and batching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import (
    Batch,
    TrajectoryDataset,
    TrajectorySample,
    extract_samples,
)
from repro.data.trajectory import AgentTrack, Scene


def linear_track(agent_id, start, length, origin=(0.0, 0.0), step=(1.0, 0.0)):
    t = np.arange(length, dtype=np.float64)[:, None]
    return AgentTrack(
        agent_id, start, np.asarray(origin) + t * np.asarray(step)
    )


@pytest.fixture
def scene():
    """Three agents: two full-length, one only covering early frames."""
    return Scene(
        scene_id=5,
        domain="eth_ucy",
        dt=0.4,
        tracks=[
            linear_track(0, 0, 30),
            linear_track(1, 0, 30, origin=(0.0, 2.0)),
            linear_track(2, 0, 10, origin=(0.0, 4.0)),
        ],
    )


class TestTrajectorySample:
    def test_validation(self):
        with pytest.raises(ValueError, match="obs"):
            TrajectorySample(np.zeros((8, 3)), np.zeros((12, 2)), np.zeros((0, 8, 2)), "d")
        with pytest.raises(ValueError, match="future"):
            TrajectorySample(np.zeros((8, 2)), np.zeros((12, 3)), np.zeros((0, 8, 2)), "d")
        with pytest.raises(ValueError, match="neighbour window"):
            TrajectorySample(np.zeros((8, 2)), np.zeros((12, 2)), np.zeros((1, 5, 2)), "d")

    def test_empty_neighbours_normalized(self):
        s = TrajectorySample(np.zeros((8, 2)), np.zeros((12, 2)), np.zeros((0,)), "d")
        assert s.neighbours.shape == (0, 8, 2)
        assert s.num_neighbours == 0


class TestExtractSamples:
    def test_focal_needs_full_window(self, scene):
        samples = extract_samples(scene, obs_len=8, pred_len=12, stride=1)
        # Agent 2 (10 frames) can never be focal; agents 0/1 can, for
        # window starts 0..10 inclusive.
        focal_counts = {}
        for s in samples:
            focal_counts[s.frame] = focal_counts.get(s.frame, 0) + 1
        assert all(count == 2 for count in focal_counts.values())
        assert len(samples) == 2 * 11

    def test_partial_agent_counts_as_neighbour(self, scene):
        samples = extract_samples(scene, stride=1)
        first = [s for s in samples if s.frame == 0]
        # At window 0, agent 2 covers the obs part (frames 0..8) -> neighbour.
        assert all(s.num_neighbours == 2 for s in first)
        late = [s for s in samples if s.frame == 10]
        assert all(s.num_neighbours == 1 for s in late)

    def test_window_contents_match_track(self, scene):
        samples = extract_samples(scene, stride=1)
        s = samples[0]
        np.testing.assert_allclose(s.obs[:, 0], np.arange(8.0))
        np.testing.assert_allclose(s.future[:, 0], np.arange(8.0, 20.0))

    def test_stride_reduces_samples(self, scene):
        dense = extract_samples(scene, stride=1)
        sparse = extract_samples(scene, stride=5)
        assert len(sparse) < len(dense)

    def test_max_neighbours_keeps_nearest(self):
        tracks = [linear_track(0, 0, 20)] + [
            linear_track(i, 0, 20, origin=(0.0, float(i))) for i in range(1, 6)
        ]
        scene = Scene(0, "d", 0.4, tracks)
        samples = extract_samples(scene, stride=20, max_neighbours=2)
        focal0 = next(s for s in samples if np.allclose(s.obs[0], [0, 0]))
        assert focal0.num_neighbours == 2
        # Nearest two neighbours are at y=1 and y=2.
        ys = sorted(focal0.neighbours[:, 0, 1])
        assert ys == [1.0, 2.0]

    def test_rejects_bad_stride(self, scene):
        with pytest.raises(ValueError):
            extract_samples(scene, stride=0)


class TestTrajectoryDataset:
    def make_dataset(self, scene):
        return TrajectoryDataset(extract_samples(scene, stride=2))

    def test_domain_mapping(self, scene):
        ds = self.make_dataset(scene)
        assert ds.domains == ["eth_ucy"]
        assert ds.domain_id("eth_ucy") == 0
        assert ds.num_domains == 1

    def test_explicit_domains_preserved(self, scene):
        ds = TrajectoryDataset(
            extract_samples(scene, stride=4), domains=["syi", "eth_ucy"]
        )
        assert ds.domain_id("eth_ucy") == 1

    def test_unknown_sample_domain_rejected(self, scene):
        with pytest.raises(ValueError, match="not listed"):
            TrajectoryDataset(extract_samples(scene, stride=4), domains=["syi"])

    def test_subset_preserves_domains(self, scene):
        ds = TrajectoryDataset(
            extract_samples(scene, stride=4), domains=["syi", "eth_ucy"]
        )
        sub = ds.subset([0, 1])
        assert len(sub) == 2
        assert sub.domains == ["syi", "eth_ucy"]

    def test_by_domain_and_counts(self, scene):
        ds = self.make_dataset(scene)
        assert len(ds.by_domain("eth_ucy")) == len(ds)
        assert ds.domain_counts() == {"eth_ucy": len(ds)}

    def test_merge_unions_domains(self, scene):
        a = TrajectoryDataset(extract_samples(scene, stride=8), domains=["eth_ucy"])
        other_scene = Scene(
            1, "syi", 0.4, [linear_track(0, 0, 25), linear_track(1, 0, 25)]
        )
        b = TrajectoryDataset(extract_samples(other_scene, stride=8), domains=["syi"])
        merged = TrajectoryDataset.merge([a, b])
        assert merged.domains == ["eth_ucy", "syi"]
        assert len(merged) == len(a) + len(b)


class TestCollate:
    def test_normalization(self, scene):
        ds = TrajectoryDataset(extract_samples(scene, stride=2))
        batch = ds.collate(range(4))
        np.testing.assert_allclose(batch.obs[:, -1, :], 0.0, atol=1e-12)
        # Future positions continue from the origin in the same direction.
        assert np.all(batch.future[:, 0, 0] > 0)

    def test_denormalize_roundtrip(self, scene):
        ds = TrajectoryDataset(extract_samples(scene, stride=2))
        batch = ds.collate(range(4))
        restored = batch.denormalize(batch.future)
        raw = np.stack([ds.samples[i].future for i in range(4)])
        np.testing.assert_allclose(restored, raw)

    def test_padding_and_mask(self, scene):
        ds = TrajectoryDataset(extract_samples(scene, stride=2))
        batch = ds.collate(range(len(ds)), max_neighbours=3)
        assert batch.neighbours.shape[1] == 3
        # Padded slots are exactly zero.
        assert np.all(batch.neighbours[~batch.neighbour_mask] == 0.0)

    def test_max_neighbours_truncates_to_nearest(self):
        tracks = [linear_track(0, 0, 20)] + [
            linear_track(i, 0, 20, origin=(0.0, float(i * 2))) for i in range(1, 5)
        ]
        scene = Scene(0, "d", 0.4, tracks)
        ds = TrajectoryDataset(extract_samples(scene, stride=20))
        focal0_idx = next(
            i for i, s in enumerate(ds.samples) if np.allclose(s.obs[0], [0, 0])
        )
        batch = ds.collate([focal0_idx], max_neighbours=1)
        assert batch.neighbour_mask.sum() == 1
        # The kept neighbour is the closest one (y offset 2).
        assert np.allclose(batch.neighbours[0, 0, 0, 1], 2.0)

    def test_empty_batch_rejected(self, scene):
        ds = TrajectoryDataset(extract_samples(scene, stride=2))
        with pytest.raises(ValueError):
            ds.collate([])

    def test_batches_cover_dataset(self, scene, rng):
        ds = TrajectoryDataset(extract_samples(scene, stride=2))
        seen = 0
        for batch in ds.batches(4, rng=rng):
            seen += batch.size
        assert seen == len(ds)

    def test_drop_last(self, scene, rng):
        ds = TrajectoryDataset(extract_samples(scene, stride=2))
        sizes = [b.size for b in ds.batches(4, rng=rng, drop_last=True)]
        assert all(s == 4 for s in sizes)

    def test_shuffle_false_is_ordered(self, scene):
        ds = TrajectoryDataset(extract_samples(scene, stride=2))
        batch = next(ds.batches(len(ds), shuffle=False))
        np.testing.assert_allclose(
            batch.future[0], ds.samples[0].future - ds.samples[0].obs[-1]
        )
