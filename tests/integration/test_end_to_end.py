"""Integration tests: full pipeline from simulation to evaluation.

These exercise the whole stack the way the experiment harness does, at a
micro scale: simulate domains, window, split, train each learning method on
each backbone, and check that training improves over the untrained model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import METHOD_NAMES, build_method
from repro.core.config import TrainConfig
from repro.data import DataConfig, load_domain_dataset, load_multi_domain

FAST = TrainConfig(epochs=4, batch_size=16, max_batches_per_epoch=4, eval_samples=1)
DATA = DataConfig(num_scenes=1, frames_per_scene=50, stride=6, max_neighbours=4)
SOURCES = ["eth_ucy", "lcas"]
DOMAINS = ["eth_ucy", "lcas", "sdd"]


@pytest.fixture(scope="module")
def datasets():
    train = load_multi_domain(SOURCES, DATA, domains=DOMAINS)
    target = load_domain_dataset("sdd", DATA, domains=DOMAINS)
    return train, target


@pytest.mark.parametrize("backbone", ["pecnet", "lbebm"])
@pytest.mark.parametrize("method", METHOD_NAMES)
def test_training_beats_untrained(datasets, backbone, method):
    train, target = datasets
    kwargs = {"langevin_steps": 3} if backbone == "lbebm" else {}
    learner = build_method(
        method, backbone, num_domains=len(SOURCES), train_config=FAST, rng=5, **kwargs
    )
    before_ade, _ = learner.evaluate(target.test)
    result = learner.fit(train.train)
    after_ade, after_fde = learner.evaluate(target.test)
    assert np.isfinite(after_ade) and np.isfinite(after_fde)
    assert result.epoch_losses[-1] < result.epoch_losses[0]
    if method != "counter":
        # Counter's served output is a difference of two predictions; at
        # micro training budgets the subtraction need not beat the untrained
        # near-zero prediction on an unseen domain (it is *expected* to
        # degrade relative to vanilla — that is the paper's point).
        assert after_ade < before_ade


def test_multi_domain_training_set_is_merged(datasets):
    train, _ = datasets
    counts = train.train.domain_counts()
    assert counts["eth_ucy"] > 0
    assert counts["lcas"] > 0
    assert counts["sdd"] == 0


def test_plug_and_play_contract():
    """AdapTraj must accept any TrajectoryBackbone without modification."""
    from repro.core import AdapTrajConfig, AdapTrajModel
    from repro.models import build_backbone

    config = AdapTrajConfig(feature_dim=8)
    for name in ("pecnet", "lbebm"):
        kwargs = {"langevin_steps": 2} if name == "lbebm" else {}
        backbone = build_backbone(name, context_size=config.context_size, **kwargs)
        model = AdapTrajModel(backbone, num_domains=2, config=config)
        assert model.backbone is backbone


def test_checkpoint_roundtrip_preserves_predictions(datasets, tmp_path):
    from repro.nn import load_module, save_module

    train, target = datasets
    learner = build_method(
        "adaptraj", "pecnet", num_domains=len(SOURCES), train_config=FAST, rng=6
    )
    learner.fit(train.train)
    batch = target.test.collate(range(min(8, len(target.test))))
    before = learner.model.predict(batch, rng=0)

    save_module(tmp_path / "model", learner.model)
    fresh = build_method(
        "adaptraj", "pecnet", num_domains=len(SOURCES), train_config=FAST, rng=777
    )
    load_module(tmp_path / "model", fresh.model)
    after = fresh.model.predict(batch, rng=0)
    np.testing.assert_allclose(before, after)
