"""Explore the social-force simulator: the synthetic stand-ins for Table I.

Generates a recording for each of the four domain presets, prints the
Table I-style statistics (crowd density, per-axis velocity/acceleration),
and renders one scene as ASCII art so the qualitative differences —
horizontal corridor flow, slow indoor wandering, dense vertical concourse,
open plaza — are visible at a glance.

Run:  python examples/simulator_playground.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments import format_table
from repro.metrics import compute_statistics
from repro.sim import DOMAIN_NAMES, get_domain, simulate_scene


def render_scene(scene, width=68, height=20, frame=None) -> str:
    """ASCII snapshot of agent positions at ``frame`` (default: middle)."""
    frame = frame if frame is not None else scene.num_frames // 2
    positions = scene.positions_at(frame)
    spec = get_domain(scene.domain).scenario
    grid = [[" "] * width for _ in range(height)]
    for x, y in positions:
        col = int(np.clip(x / max(spec.width, 1e-9) * (width - 1), 0, width - 1))
        row = int(np.clip((1 - y / max(spec.height, 1e-9)) * (height - 1), 0, height - 1))
        grid[row][col] = "o"
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    return f"{border}\n{body}\n{border}"


def main() -> None:
    headers = [
        "Datasets", "# sequences", "Avg/Std num",
        "Avg/Std v(x)", "Avg/Std v(y)", "Avg/Std a(x)", "Avg/Std a(y)",
    ]
    rows = []
    scenes = {}
    for i, name in enumerate(DOMAIN_NAMES):
        scene = simulate_scene(name, num_frames=100, rng=100 + i)
        scenes[name] = scene
        stats = compute_statistics([scene]).as_row()
        rows.append([name] + [stats[h] for h in headers[1:]])

    print(format_table(headers, rows, title="Synthetic domains vs paper Table I"))
    print(
        "\nPaper Table I (for comparison): densities 9.1/7.9/35.2/17.8, "
        "v(x) .279/.104/.306/.295, v(y) .090/.041/1.087/.187\n"
    )

    for name, scene in scenes.items():
        print(f"\n{name} — {scene.num_agents} agents recorded, "
              f"mid-recording snapshot:")
        print(render_scene(scene))


if __name__ == "__main__":
    main()
