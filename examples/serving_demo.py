"""Serving demo: train, publish to a registry, stream live points, predict.

The online counterpart of ``quickstart.py``:

1. train a small AdapTraj model on two source domains,
2. publish it to a versioned :class:`repro.serve.ModelRegistry`,
3. load it behind the uniform :class:`Predictor` interface (as a serving
   process would — no training code, no out-of-band config),
4. stream per-frame ``(agent_id, t, x, y)`` points from an unseen domain
   through the :class:`ServingEngine` (sliding windows + micro-batching),
5. read back world-frame sampled futures per agent.

Run:  PYTHONPATH=src python examples/serving_demo.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.baselines import build_method
from repro.core import TrainConfig
from repro.data import DataConfig, load_multi_domain
from repro.serve import ModelRegistry, ServingEngine
from repro.sim.generator import simulate_scene

SOURCES = ["eth_ucy", "lcas"]
TARGET = "sdd"  # unseen domain the service will face
DOMAINS = [*SOURCES, TARGET]


def main() -> None:
    # 1. Train (tiny budget — this demo is about the serving path).
    data_config = DataConfig(num_scenes=1, frames_per_scene=70, stride=3)
    train = load_multi_domain(SOURCES, data_config, domains=DOMAINS).train
    learner = build_method(
        "adaptraj",
        "pecnet",
        num_domains=len(SOURCES),
        train_config=TrainConfig(epochs=4, batch_size=32),
        rng=7,
    )
    learner.fit(train)

    # 2. Publish: weights + method/backbone spec in one self-describing file.
    registry = ModelRegistry(tempfile.mkdtemp(prefix="repro-registry-"))
    version = registry.publish("adaptraj-pecnet", learner)
    print(f"published adaptraj-pecnet v{version} -> {registry.path('adaptraj-pecnet', version)}")

    # 3. Load for serving (float32 serving stacks would call
    #    repro.nn.set_default_dtype(np.float32) first; the registry converts).
    predictor = registry.load("adaptraj-pecnet")
    print(f"serving {predictor.describe()}")

    # 4. Stream an unseen-domain scene frame by frame.
    engine = ServingEngine(predictor, num_samples=5, max_batch_size=32, rng=0)
    scene = simulate_scene(TARGET, num_frames=30, rng=11)
    latest: dict = {}  # most recent prediction per agent across the stream
    for frame in range(scene.num_frames):
        engine.ingest_frame(
            frame,
            {
                track.agent_id: tuple(track.positions[frame - track.start_frame])
                for track in scene.agents_at(frame)
            },
        )
        futures = engine.predict_ready(frame)
        latest.update(futures)
        if futures:
            print(f"frame {frame:>2}: predicted {len(futures)} agents "
                  f"(batches so far: {engine.batcher.total_batches}, "
                  f"mean batch size: {engine.batcher.mean_batch_size:.1f})")
    assert latest, "no agent ever accumulated a full observation window"

    # 5. Inspect one agent's sampled futures (world coordinates, [K, 12, 2]).
    agent_id, samples = next(iter(latest.items()))
    print(f"\nagent {agent_id}: {samples.shape[0]} sampled futures, "
          f"first predicted position {np.round(samples[0, 0], 2)}, "
          f"endpoint spread {np.round(samples[:, -1].std(axis=0), 3)}")


if __name__ == "__main__":
    main()
