"""The paper's headline setting: three source domains, one unseen target.

Trains all four learning methods (vanilla, Counter, CausalMotion, AdapTraj)
on ETH&UCY-, L-CAS-, and SYI-like domains and evaluates every one of them on
the SDD-like target none of them has seen — a single-row slice of paper
Table IV.

Run:  python examples/unseen_domain_generalization.py [backbone]
      (backbone: pecnet [default] or lbebm)
"""

from __future__ import annotations

import sys

from repro.baselines import METHOD_NAMES, build_method
from repro.core import TrainConfig
from repro.data import DataConfig, load_domain_dataset, load_multi_domain
from repro.experiments import format_table

SOURCES = ["eth_ucy", "lcas", "syi"]
TARGET = "sdd"
DOMAINS = [*SOURCES, TARGET]


def main(backbone: str = "pecnet") -> None:
    data_config = DataConfig(num_scenes=2, frames_per_scene=90, stride=3)
    train_splits = load_multi_domain(SOURCES, data_config, domains=DOMAINS)
    target_splits = load_domain_dataset(TARGET, data_config, domains=DOMAINS)
    train_config = TrainConfig(
        epochs=20, batch_size=32, max_batches_per_epoch=20, eval_samples=3
    )

    rows = []
    for method in METHOD_NAMES:
        learner = build_method(
            method,
            backbone,
            num_domains=len(SOURCES),
            train_config=train_config,
            rng=11,
        )
        result = learner.fit(train_splits.train)
        ade, fde = learner.evaluate(target_splits.test)
        rows.append([method, f"{ade:.3f}", f"{fde:.3f}", f"{result.train_seconds:.0f}s"])
        print(f"[{backbone}-{method}] ADE {ade:.3f}  FDE {fde:.3f}")

    print()
    print(
        format_table(
            ["Method", "ADE", "FDE", "train"],
            rows,
            title=f"{backbone}: sources {SOURCES} -> unseen target {TARGET!r}",
        )
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "pecnet")
