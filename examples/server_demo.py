"""Network serving demo: train, publish, serve over TCP, stream, shut down.

The network counterpart of ``serving_demo.py`` (which stays in-process):

1. train a small AdapTraj model on two source domains and publish it to a
   versioned :class:`repro.serve.ModelRegistry`,
2. start an :class:`AsyncServingServer` for it on a loopback port (the event
   loop lives on a daemon thread via :class:`ServerThread` — a standalone
   deployment would run ``python -m repro.serve.server`` instead),
3. connect a blocking :class:`ServingClient`, check ``health``, stream an
   unseen domain's frames through ``observe``, and fetch world-frame sampled
   futures with frame-mode ``predict``,
4. read the server's ``stats`` (batching effectiveness, latency, in-flight
   peaks) and shut everything down cleanly.

Run:  PYTHONPATH=src python examples/server_demo.py

This script doubles as the CI server smoke: it exercises the full wire path
(framing, observe/predict/stats/health, graceful shutdown) end to end.
"""

from __future__ import annotations

import json
import tempfile

import numpy as np

from repro.baselines import build_method
from repro.core import TrainConfig
from repro.data import DataConfig, load_multi_domain
from repro.serve import AsyncServingServer, ModelRegistry, ServerThread, ServingClient
from repro.serve.protocol import encode_frame, request
from repro.sim.generator import simulate_scene

SOURCES = ["eth_ucy", "lcas"]
TARGET = "sdd"  # unseen domain the service will face
DOMAINS = [*SOURCES, TARGET]
MODEL = "adaptraj-pecnet"


def main() -> None:
    # 1. Train (tiny budget) and publish.
    data_config = DataConfig(num_scenes=1, frames_per_scene=70, stride=3)
    train = load_multi_domain(SOURCES, data_config, domains=DOMAINS).train
    learner = build_method(
        "adaptraj",
        "pecnet",
        num_domains=len(SOURCES),
        train_config=TrainConfig(epochs=4, batch_size=32),
        rng=7,
    )
    learner.fit(train)
    registry = ModelRegistry(tempfile.mkdtemp(prefix="repro-registry-"))
    version = registry.publish(MODEL, learner)
    print(f"published {MODEL} v{version}")

    # 2. Serve it over TCP.
    server = AsyncServingServer(max_in_flight=128, workers=2, seed=0)
    server.add_model(
        MODEL, registry.load(MODEL), num_samples=5, max_batch_size=32, max_wait=0.002
    )
    with ServerThread(server) as thread:
        host, port = server.address
        print(f"serving {MODEL} on {host}:{port}")

        # 3. Stream an unseen-domain scene frame by frame over the wire.
        with ServingClient.connect(host, port) as client:
            health = client.health()
            print(f"health: {health}")
            assert health["status"] == "ok" and health["models"] == [MODEL]

            # One example exchange, shown as the raw frames on the wire.
            message = request("observe", 1, model=MODEL, frame=0,
                              positions={"demo": [1.0, 2.0]})
            print(f"wire frame ({len(encode_frame(message))} bytes): "
                  f"{json.dumps(message)}")

            scene = simulate_scene(TARGET, num_frames=30, rng=11)
            latest: dict = {}
            for frame in range(scene.num_frames):
                client.observe(
                    MODEL,
                    frame,
                    {
                        track.agent_id: track.positions[frame - track.start_frame]
                        for track in scene.agents_at(frame)
                    },
                )
                futures = client.predict_frame(MODEL, frame)
                latest.update(futures)
                if futures:
                    print(f"frame {frame:>2}: predicted {len(futures)} agents")
            assert latest, "no agent ever accumulated a full observation window"

            # 4. Inspect one agent and the server-side counters.
            agent_id, samples = next(iter(latest.items()))
            assert samples.shape[0] == 5 and samples.shape[2] == 2
            print(f"\nagent {agent_id}: {samples.shape[0]} sampled futures, "
                  f"first predicted position {np.round(samples[0, 0], 2)}, "
                  f"endpoint spread {np.round(samples[:, -1].std(axis=0), 3)}")
            stats = client.stats()
            model_stats = stats["models"][MODEL]
            print(f"server: {model_stats['total_completed']} predictions in "
                  f"{model_stats['total_batches']} batches "
                  f"(mean batch {model_stats['mean_batch_size']}, "
                  f"mean latency {model_stats['latency']['mean_s'] * 1e3:.2f} ms, "
                  f"in-flight peak {stats['server']['in_flight_peak']})")
            assert model_stats["total_completed"] > 0

        # 5. The same request over the v2 binary encoding: the samples ride
        # in a raw float tail instead of JSON, shrinking large-K responses.
        # (Values differ between the two calls — each flush draws fresh
        # per-batch noise — so compare shape and size, not samples.)
        window = np.cumsum(np.full((8, 2), 0.1), axis=0)
        with ServingClient.connect(host, port) as plain:
            plain_samples = plain.predict(MODEL, window)
            json_bytes = plain.last_response_bytes
        with ServingClient.connect(host, port, binary=True) as binary_client:
            assert binary_client.supports_binary()
            binary_samples = binary_client.predict(MODEL, window)
            binary_bytes = binary_client.last_response_bytes
        assert binary_samples.shape == plain_samples.shape
        assert binary_bytes < json_bytes
        print(f"binary predict response: {binary_bytes} bytes "
              f"vs {json_bytes} JSON "
              f"({binary_bytes / json_bytes:.0%} of the JSON payload)")
    print("server stopped cleanly")


if __name__ == "__main__":
    main()
