"""Quickstart: train AdapTraj on two source domains, predict on an unseen one.

This walks the full public API in ~40 lines:

1. simulate two source domains and one unseen target domain,
2. build an AdapTraj-wrapped PECNet backbone,
3. run the three-phase training procedure (paper Alg. 1),
4. evaluate ADE/FDE on the unseen target and inspect a prediction.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import build_method
from repro.core import TrainConfig
from repro.data import DataConfig, load_domain_dataset, load_multi_domain

SOURCES = ["eth_ucy", "lcas"]  # corridor + indoor domains for training
TARGET = "sdd"  # open campus plaza: never seen in training
DOMAINS = [*SOURCES, TARGET]


def main() -> None:
    # 1. Data: the social-force simulator stands in for the paper's datasets.
    data_config = DataConfig(num_scenes=2, frames_per_scene=80, stride=3)
    train_splits = load_multi_domain(SOURCES, data_config, domains=DOMAINS)
    target_splits = load_domain_dataset(TARGET, data_config, domains=DOMAINS)
    print(f"train samples: {len(train_splits.train)} "
          f"({train_splits.train.domain_counts()})")
    print(f"unseen-target test samples: {len(target_splits.test)}")

    # 2. Model: AdapTraj wrapped around the PECNet backbone (plug-and-play).
    learner = build_method(
        "adaptraj",
        "pecnet",
        num_domains=len(SOURCES),
        train_config=TrainConfig(epochs=16, batch_size=32, eval_samples=3),
        rng=7,
    )

    # 3. Train with the three-phase schedule of Alg. 1.
    result = learner.fit(train_splits.train, val=train_splits.val, eval_every=8)
    print(f"\ntraining loss: {result.epoch_losses[0]:.3f} -> "
          f"{result.epoch_losses[-1]:.3f}  ({result.train_seconds:.1f}s)")
    for epoch, ade, fde in result.val_history:
        print(f"  epoch {epoch:>3}: source-val ADE {ade:.3f} / FDE {fde:.3f}")

    # 4. Evaluate on the unseen domain.
    ade, fde = learner.evaluate(target_splits.test)
    print(f"\nunseen target ({TARGET}): ADE {ade:.3f} / FDE {fde:.3f}")

    # Inspect one prediction against the ground truth.
    batch = target_splits.test.collate(range(1))
    samples = learner.model.predict(batch, num_samples=1, rng=0)
    predicted = batch.denormalize(samples[0])[0]
    actual = batch.denormalize(batch.future)[0]
    print("\n  step  predicted (x, y)     actual (x, y)")
    for t in (0, 5, 11):
        print(f"  {t:>4}  ({predicted[t, 0]:7.2f}, {predicted[t, 1]:7.2f})   "
              f"({actual[t, 0]:7.2f}, {actual[t, 1]:7.2f})")


if __name__ == "__main__":
    main()
