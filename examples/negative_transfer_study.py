"""Negative transfer: more source domains can make a DG method *worse*.

Reproduces the motivation of paper Table III / Fig. 3: train Counter (a
single-source DG method) and AdapTraj on growing sets of source domains and
evaluate on the unseen SDD-like target.  Counter tends to degrade as
heterogeneous sources are merged; AdapTraj is designed to benefit instead.

Run:  python examples/negative_transfer_study.py
"""

from __future__ import annotations

from repro.baselines import build_method
from repro.core import TrainConfig
from repro.data import DataConfig, load_domain_dataset, load_multi_domain
from repro.experiments import ascii_bar_chart, format_table

SOURCE_SETS = [
    ["eth_ucy"],
    ["eth_ucy", "lcas"],
    ["eth_ucy", "lcas", "syi"],
]
TARGET = "sdd"


def main() -> None:
    data_config = DataConfig(num_scenes=2, frames_per_scene=80, stride=3)
    train_config = TrainConfig(
        epochs=18, batch_size=32, max_batches_per_epoch=16, eval_samples=3
    )

    rows = []
    chart_points: dict[str, list[tuple[str, float]]] = {"counter": [], "adaptraj": []}
    for sources in SOURCE_SETS:
        domains = [*sources, TARGET]
        train_splits = load_multi_domain(sources, data_config, domains=domains)
        target_splits = load_domain_dataset(TARGET, data_config, domains=domains)
        row = [", ".join(sources)]
        for method in ("counter", "adaptraj"):
            learner = build_method(
                method,
                "pecnet",
                num_domains=len(sources),
                train_config=train_config,
                rng=13,
            )
            learner.fit(train_splits.train)
            ade, fde = learner.evaluate(target_splits.test)
            row.append(f"{ade:.3f}/{fde:.3f}")
            chart_points[method].append((f"{len(sources)} source(s)", ade))
        rows.append(row)

    print(
        format_table(
            ["Source Domains", "Counter (ADE/FDE)", "AdapTraj (ADE/FDE)"],
            rows,
            title=f"Negative transfer study (target {TARGET!r}, PECNet backbone)",
        )
    )
    for method, points in chart_points.items():
        print(f"\n{method} ADE vs number of source domains:")
        print(ascii_bar_chart(points))


if __name__ == "__main__":
    main()
